/**
 * @file
 * selvec_fuzz: randomized end-to-end sweep against the reference
 * oracle, with failure containment and replayable repro bundles.
 *
 *   selvec_fuzz [--seeds N] [--seed-start N] [--deadline-ms N]
 *               [--repro-dir D] [--force-fault SPEC] [--replay-check]
 *               [--optgap] [--simdiff]
 *
 * Each seed deterministically derives a generated loop, a randomized
 * stock-machine variant, a technique, a trip count and (for ~30% of
 * seeds, unless --force-fault pins one) a fault-injection plan, then
 * runs the full pipeline under a per-seed deadline and the simulator
 * watchdog — compile, bounded pipelined execution, bitwise
 * verification against the reference interpreter.
 *
 * Outcomes per seed:
 *   clean      — compiled, ran, verified;
 *   contained  — a structured failure (injected fault, deadline,
 *                watchdog, schedule/partition exhaustion) that the
 *                containment layer absorbed; expected, not a bug;
 *   finding    — a verification divergence or an escape below the
 *                Status layer: a real bug. Findings are minimized by
 *                greedy body-line deletion and exit the sweep with
 *                status 1.
 *
 * With --repro-dir every non-clean seed writes a selvec-repro-v1
 * bundle (seed<N>.repro.json); --replay-check re-loads each written
 * bundle and asserts selvec_replay-style reproduction, closing the
 * loop on bundle fidelity.
 *
 * --optgap switches to the differential partition-oracle sweep: each
 * seed's loop is partitioned twice — the KL heuristic against the
 * exact branch-and-bound oracle — and the sweep asserts the oracle
 * never costs more than KL (it starts from the KL incumbent, so a
 * regression is a bug in the search, not bad luck). Any seed with a
 * strict gap is additionally replayed end-to-end under
 * strategy=exact: the cheaper partition must still produce a
 * checker-clean program. Fault injection is disabled in this mode.
 *
 * --simdiff switches to the differential simulator sweep: every seed
 * replays with the SELVEC_CHECK_SIM lockstep shadow forced on, so
 * each pipelined run executes on the streaming engine while the
 * dense reference engine re-executes every op instance beside it —
 * operand values, readiness, store-suppression decisions, exit state,
 * and the final observables. Unlike the bench_simspeed differential
 * (one generated main loop per subject), the replay path exercises
 * main/cleanup chaining, distributed loop sequences and every
 * technique's lowered shapes. An engine divergence dies on the spot
 * with both engines' views (the check-mode contract), failing the
 * sweep; structured failures classify as in the default sweep. Fault
 * injection is disabled: this sweep differentiates two clean engines,
 * not the containment layer.
 *
 * The sweep is serial by design: fault plans are process-global.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/depgraph.hh"
#include "analysis/vectorizable.hh"
#include "core/partition.hh"
#include "driver/repro.hh"
#include "lir/lir.hh"
#include "support/checkmode.hh"
#include "support/faultinject.hh"
#include "support/random.hh"
#include "workloads/generator.hh"

using namespace selvec;

namespace
{

struct FuzzConfig
{
    uint64_t seedStart = 1;
    int seeds = 50;
    int64_t deadlineMs = 2000;
    std::string reproDir;
    std::string forceFault;
    bool replayCheck = false;
    bool optgap = false;
    bool simdiff = false;
};

enum class OutcomeClass { Clean, Contained, Finding };

/** Classify a replay status: a divergence or an escape below the
 *  Status layer is a finding; any other structured failure is the
 *  containment layer doing its job. An injected fault is always
 *  contained, whatever its code — fault sites deliberately surface
 *  Internal (lowering) and VerifyFailed (checker) to prove those
 *  codes propagate, and every injection message names its site. */
OutcomeClass
classify(const Status &status)
{
    if (status.ok())
        return OutcomeClass::Clean;
    if (status.message().find("fault injected at") !=
        std::string::npos)
        return OutcomeClass::Contained;
    if (status.code() == ErrorCode::Internal ||
        status.code() == ErrorCode::InvalidInput ||
        (status.code() == ErrorCode::VerifyFailed &&
         status.stage() == "replay"))
        return OutcomeClass::Finding;
    return OutcomeClass::Contained;
}

/** The candidate configuration a seed deterministically derives. */
ReproBundle
candidateForSeed(uint64_t seed, const FuzzConfig &config)
{
    Rng rng(seed);
    GeneratorOptions gopt;
    GeneratedLoop gen = generateLoop(rng, gopt);

    ReproBundle bundle;
    bundle.name = gen.loop().name;
    bundle.module = gen.module;
    bundle.liveIns = gen.liveIns;
    bundle.seed = seed;
    bundle.tripCount = rng.range(1, gopt.maxTrip);
    bundle.invocations = 1;
    bundle.memPattern =
        static_cast<int64_t>(0xC0FFEEULL ^ seed);
    bundle.deadlineMs = config.deadlineMs;

    // A randomized variant of a stock machine; revert any tweak that
    // makes the description invalid.
    Machine stock;
    switch (rng.range(0, 3)) {
    case 0: stock = paperMachine(); break;
    case 1: stock = directMoveMachine(); break;
    case 2: stock = wideMachine(); break;
    default: stock = embeddedMachine(); break;
    }
    Machine machine = stock;
    if (rng.chance(0.25))
        machine.alignment =
            machine.alignment == AlignPolicy::AssumeAligned
                ? AlignPolicy::AssumeMisaligned
                : AlignPolicy::AssumeAligned;
    machine.invocationOverhead =
        static_cast<int>(rng.range(0, 24));
    if (!machine.check().empty())
        machine = stock;
    bundle.machine = machine;

    bundle.technique =
        static_cast<Technique>(rng.range(
            0, static_cast<int>(Technique::IterationSplit)));

    if (!config.forceFault.empty()) {
        bundle.faultPlan = config.forceFault;
    } else if (rng.chance(0.3)) {
        // Only instant sites: modsched.stall sleeps out the whole
        // deadline, which would make a wide sweep crawl.
        static const char *const kSites[] = {
            "partition.kl", "modsched.search", "lowering.lower",
            "checker.validate", "sim.watchdog",
        };
        const char *site = kSites[rng.range(0, 4)];
        bundle.faultPlan =
            std::string(site) + ":" +
            std::to_string(rng.range(0, 2)) + "+1";
    }
    return bundle;
}

/**
 * Greedy minimizer: repeatedly delete single LIR lines while the
 * failure keeps the same class and error code. Structural deletions
 * fail to re-parse and are skipped automatically.
 */
ReproBundle
minimizeFinding(const ReproBundle &finding)
{
    ReproBundle best = finding;
    Status want = replayBundle(best).status;
    if (classify(want) != OutcomeClass::Finding)
        return best;

    // Greedy restart-scan is O(lines^2) replays; a budget keeps a
    // pathological finding from stalling the whole sweep.
    int replaysLeft = 400;
    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        std::string text = writeLir(best.module);
        std::vector<std::string> lines;
        size_t pos = 0;
        while (pos <= text.size()) {
            size_t nl = text.find('\n', pos);
            if (nl == std::string::npos) {
                if (pos < text.size())
                    lines.push_back(text.substr(pos));
                break;
            }
            lines.push_back(text.substr(pos, nl - pos));
            pos = nl + 1;
        }
        for (size_t drop = 0; drop < lines.size(); ++drop) {
            std::string candidate;
            for (size_t i = 0; i < lines.size(); ++i)
                if (i != drop)
                    candidate += lines[i] + "\n";
            Expected<Module> reparsed = tryParseLir(candidate);
            if (!reparsed.ok() || reparsed.value().loops.empty())
                continue;
            if (--replaysLeft < 0)
                return best;
            ReproBundle trial = best;
            trial.module = reparsed.value();
            trial.name = trial.module.loops.front().name;
            Status got = replayBundle(trial).status;
            if (classify(got) == OutcomeClass::Finding &&
                got.code() == want.code()) {
                best = trial;
                want = got;
                shrunk = true;
                break;
            }
        }
    }
    best.failure = want;
    return best;
}

/**
 * The differential partition-oracle sweep (--optgap): for every seed,
 * KL vs the exact branch-and-bound oracle on the same loop/machine.
 * Exit 1 on any violation of exact_cost <= kl_cost, or on a gap seed
 * whose exact-strategy end-to-end replay is a finding.
 */
int
runOptgapSweep(const FuzzConfig &config)
{
    int checked = 0, skipped = 0, gaps = 0, findings = 0;
    for (int i = 0; i < config.seeds; ++i) {
        uint64_t seed = config.seedStart + static_cast<uint64_t>(i);
        ReproBundle bundle = candidateForSeed(seed, config);
        // No fault injection: this sweep differentiates two clean
        // partitioners, not the containment layer.
        bundle.faultPlan.clear();
        bundle.technique = Technique::Selective;

        const Loop &loop = bundle.module.loops.front();
        DepGraph graph(bundle.module.arrays, loop, bundle.machine);
        VectAnalysis va = analyzeVectorizable(
            loop, graph, bundle.machine, bundle.options.vectorize);

        PartitionOptions popt = bundle.options.partition;
        popt.strategy = PartitionStrategy::Kl;
        PartitionResult kl =
            partitionOps(loop, va, bundle.machine, popt);
        popt.strategy = PartitionStrategy::Exact;
        PartitionResult exact =
            partitionOps(loop, va, bundle.machine, popt);
        ++checked;

        if (!exact.exactProven) {
            // Budget stop: Unproven keeps the KL incumbent, so the
            // inequality below still holds; count it separately.
            ++skipped;
        }
        if (exact.bestCost > kl.bestCost ||
            exact.klCost != kl.bestCost || exact.exactGap < 0) {
            ++findings;
            std::printf("seed %llu: FINDING: exact cost %lld vs KL "
                        "%lld (recorded kl=%lld gap=%lld)\n",
                        static_cast<unsigned long long>(seed),
                        static_cast<long long>(exact.bestCost),
                        static_cast<long long>(kl.bestCost),
                        static_cast<long long>(exact.klCost),
                        static_cast<long long>(exact.exactGap));
            continue;
        }
        if (exact.exactGap == 0)
            continue;

        // A strict gap: the cheaper partition must still compile to a
        // checker-clean program end to end. Contained structured
        // failures (schedule exhaustion, watchdog) are tolerated —
        // the oracle changes the partition, not the containment
        // contract.
        ++gaps;
        bundle.options.partition.strategy = PartitionStrategy::Exact;
        Status status = replayBundle(bundle).status;
        if (classify(status) == OutcomeClass::Finding) {
            ++findings;
            std::printf("seed %llu: FINDING: gap %lld but exact "
                        "replay failed: %s\n",
                        static_cast<unsigned long long>(seed),
                        static_cast<long long>(exact.exactGap),
                        status.str().c_str());
        } else {
            std::printf("seed %llu: gap %lld (KL %lld -> exact %lld)"
                        ", exact replay %s\n",
                        static_cast<unsigned long long>(seed),
                        static_cast<long long>(exact.exactGap),
                        static_cast<long long>(kl.bestCost),
                        static_cast<long long>(exact.bestCost),
                        status.ok() ? "clean" : "contained");
        }
    }
    std::printf("optgap: %d seeds, %d checked, %d unproven, %d gaps, "
                "%d findings\n",
                config.seeds, checked, skipped, gaps, findings);
    return findings != 0 ? 1 : 0;
}

/**
 * The differential simulator sweep (--simdiff): see the file comment.
 * Exit 1 on any finding; an engine divergence never returns (the
 * lockstep shadow dies with both engines' views of the instance).
 */
int
runSimdiffSweep(const FuzzConfig &config)
{
    setCheckSim(true);
    int clean = 0, contained = 0, findings = 0;
    for (int i = 0; i < config.seeds; ++i) {
        uint64_t seed = config.seedStart + static_cast<uint64_t>(i);
        ReproBundle bundle = candidateForSeed(seed, config);
        // No fault injection: this sweep differentiates two clean
        // engines, not the containment layer.
        bundle.faultPlan.clear();
        Status status = replayBundle(bundle).status;
        OutcomeClass cls = classify(status);
        if (cls == OutcomeClass::Clean) {
            ++clean;
        } else if (cls == OutcomeClass::Contained) {
            ++contained;
            std::printf("seed %llu: contained: %s\n",
                        static_cast<unsigned long long>(seed),
                        status.str().c_str());
        } else {
            ++findings;
            std::printf("seed %llu: FINDING: %s\n",
                        static_cast<unsigned long long>(seed),
                        status.str().c_str());
        }
    }
    std::printf("simdiff: %d seeds, %d clean, %d contained, "
                "%d findings, 0 divergences\n",
                config.seeds, clean, contained, findings);
    return findings != 0 ? 1 : 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    FuzzConfig config;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto intArg = [&](const char *name, int64_t *out) {
            std::string prefix = std::string(name) + "=";
            if (arg == name && i + 1 < argc) {
                *out = std::atoll(argv[++i]);
                return true;
            }
            if (arg.rfind(prefix, 0) == 0) {
                *out = std::atoll(arg.c_str() + prefix.size());
                return true;
            }
            return false;
        };
        auto strArg = [&](const char *name, std::string *out) {
            std::string prefix = std::string(name) + "=";
            if (arg == name && i + 1 < argc) {
                *out = argv[++i];
                return true;
            }
            if (arg.rfind(prefix, 0) == 0) {
                *out = arg.substr(prefix.size());
                return true;
            }
            return false;
        };
        int64_t n = 0;
        if (intArg("--seeds", &n)) {
            config.seeds = static_cast<int>(n);
        } else if (intArg("--seed-start", &n)) {
            config.seedStart = static_cast<uint64_t>(n);
        } else if (intArg("--deadline-ms", &n)) {
            config.deadlineMs = n;
        } else if (strArg("--repro-dir", &config.reproDir) ||
                   strArg("--force-fault", &config.forceFault)) {
            // consumed
        } else if (arg == "--replay-check") {
            config.replayCheck = true;
        } else if (arg == "--optgap") {
            config.optgap = true;
        } else if (arg == "--simdiff") {
            config.simdiff = true;
        } else {
            std::fprintf(
                stderr,
                "usage: selvec_fuzz [--seeds N] [--seed-start N] "
                "[--deadline-ms N] [--repro-dir D] "
                "[--force-fault SPEC] [--replay-check] [--optgap] "
                "[--simdiff]\n");
            return 2;
        }
    }
    if (config.optgap)
        return runOptgapSweep(config);
    if (config.simdiff)
        return runSimdiffSweep(config);
    if (!config.forceFault.empty()) {
        Expected<FaultPlan> plan = parseFaultPlan(config.forceFault);
        if (!plan.ok()) {
            std::fprintf(stderr, "--force-fault: %s\n",
                         plan.status().str().c_str());
            return 2;
        }
    }

    int clean = 0, contained = 0;
    int findings = 0, bundles = 0, replayMismatches = 0;
    for (int i = 0; i < config.seeds; ++i) {
        uint64_t seed = config.seedStart + static_cast<uint64_t>(i);
        ReproBundle bundle = candidateForSeed(seed, config);
        Status status = replayBundle(bundle).status;
        OutcomeClass cls = classify(status);

        if (cls == OutcomeClass::Clean) {
            ++clean;
            continue;
        }
        if (cls == OutcomeClass::Contained) {
            ++contained;
            std::printf("seed %llu: contained: %s\n",
                        static_cast<unsigned long long>(seed),
                        status.str().c_str());
        } else {
            ++findings;
            std::printf("seed %llu: FINDING: %s\n",
                        static_cast<unsigned long long>(seed),
                        status.str().c_str());
            bundle = minimizeFinding(bundle);
            status = bundle.failure;
            std::printf("seed %llu: minimized to %d-op loop\n",
                        static_cast<unsigned long long>(seed),
                        bundle.module.loops.front().numOps());
        }
        bundle.failure = status;

        if (config.reproDir.empty())
            continue;
        std::string path = config.reproDir + "/seed" +
                           std::to_string(seed) + ".repro.json";
        Status written = writeReproBundle(path, bundle);
        if (!written) {
            std::fprintf(stderr, "seed %llu: bundle not written: %s\n",
                         static_cast<unsigned long long>(seed),
                         written.str().c_str());
            continue;
        }
        ++bundles;
        if (config.replayCheck) {
            Expected<ReproBundle> loaded = loadReproBundle(path);
            if (!loaded.ok() ||
                !replayBundle(loaded.value()).reproduced) {
                ++replayMismatches;
                std::fprintf(stderr,
                             "seed %llu: bundle did not reproduce\n",
                             static_cast<unsigned long long>(seed));
            }
        }
    }

    std::printf("fuzz: %d seeds, %d clean, %d contained, %d findings, "
                "%d bundles%s\n",
                config.seeds, clean, contained, findings, bundles,
                replayMismatches != 0 ? " (replay mismatches!)" : "");
    return findings != 0 || replayMismatches != 0 ? 1 : 0;
}
