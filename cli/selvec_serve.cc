/**
 * @file
 * selvec_serve: the batch compile service front-end.
 *
 *   selvec_serve [requests.jsonl] [--output FILE] [--jobs N]
 *                [--cache-dir DIR] [--cache-max-mb N] [--no-cache]
 *
 * Reads JSON-lines compile requests (selvec-repro-v1 documents, one
 * per line; see docs/DRIVER.md for the line protocol) from a file or
 * stdin, deduplicates identical in-flight requests, fans them out
 * over the thread pool, and streams one selvec-serve-v1 response
 * line per request to stdout (or --output), in input order. With
 * --cache-dir, compiles hit the persistent on-disk cache and newly
 * compiled programs are published to it for the next batch.
 *
 * A batch summary and the disk-cache counters go to stderr, so
 * stdout stays pure protocol.
 *
 * Exit status: 0 when every request succeeded, 1 when any request
 * failed or was malformed (the batch still ran to completion), 2 on
 * usage or input-file errors. Numeric flag values are parsed
 * strictly: `--jobs abc` is a usage error, never a silent jobs=0
 * batch. --no-cache wins over --cache-dir regardless of flag order.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "driver/compilecache.hh"
#include "driver/diskcache.hh"
#include "service/serve.hh"

using namespace selvec;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: selvec_serve [requests.jsonl] [--output FILE]\n"
        "                    [--jobs N] [--cache-dir DIR]\n"
        "                    [--cache-max-mb N] [--no-cache]\n");
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Expected<ServeCliConfig> parsed =
        parseServeArgs(std::vector<std::string>(argv + 1,
                                                argv + argc));
    if (!parsed.ok()) {
        std::fprintf(stderr, "selvec_serve: %s\n",
                     parsed.status().message().c_str());
        return usage();
    }
    const ServeCliConfig &cfg = parsed.value();

    if (cfg.noCache)
        compileCacheSetEnabled(false);
    // --no-cache wins over --cache-dir regardless of flag order: a
    // disabled cache must never configure (or write) the disk layer,
    // and every response then reports "compiled" provenance.
    if (cfg.diskCacheWanted())
        diskCacheConfigure(cfg.cacheDir, cfg.cacheMaxMb);

    ServeOptions options;
    options.jobs = cfg.jobs;

    std::ifstream inFile;
    if (!cfg.inputPath.empty()) {
        inFile.open(cfg.inputPath);
        if (!inFile) {
            std::fprintf(stderr,
                         "selvec_serve: cannot open '%s'\n",
                         cfg.inputPath.c_str());
            return 2;
        }
    }
    std::istream &in = !cfg.inputPath.empty()
                           ? static_cast<std::istream &>(inFile)
                           : std::cin;

    std::ofstream outFile;
    if (!cfg.outputPath.empty()) {
        outFile.open(cfg.outputPath, std::ios::trunc);
        if (!outFile) {
            std::fprintf(stderr,
                         "selvec_serve: cannot write '%s'\n",
                         cfg.outputPath.c_str());
            return 2;
        }
    }
    std::ostream &out = !cfg.outputPath.empty()
                            ? static_cast<std::ostream &>(outFile)
                            : std::cout;

    ServeSummary summary = serveBatch(in, out, options);

    std::fprintf(stderr,
                 "selvec_serve: %lld requests, %lld ok, %lld failed, "
                 "%lld malformed, %lld deduped\n",
                 static_cast<long long>(summary.requests),
                 static_cast<long long>(summary.ok),
                 static_cast<long long>(summary.failed),
                 static_cast<long long>(summary.malformed),
                 static_cast<long long>(summary.deduped));
    DiskCacheCounters c = diskCacheCounters();
    std::fprintf(stderr,
                 "cache.disk: hit=%lld miss=%lld store=%lld "
                 "evict=%lld corrupt=%lld\n",
                 static_cast<long long>(c.hit),
                 static_cast<long long>(c.miss),
                 static_cast<long long>(c.store),
                 static_cast<long long>(c.evict),
                 static_cast<long long>(c.corrupt));

    return summary.failed > 0 || summary.malformed > 0 ? 1 : 0;
}
