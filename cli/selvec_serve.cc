/**
 * @file
 * selvec_serve: the batch compile service front-end.
 *
 *   selvec_serve [requests.jsonl] [--output FILE] [--jobs N]
 *                [--cache-dir DIR] [--cache-max-mb N] [--no-cache]
 *
 * Reads JSON-lines compile requests (selvec-repro-v1 documents, one
 * per line; see docs/DRIVER.md for the line protocol) from a file or
 * stdin, deduplicates identical in-flight requests, fans them out
 * over the thread pool, and streams one selvec-serve-v1 response
 * line per request to stdout (or --output), in input order. With
 * --cache-dir, compiles hit the persistent on-disk cache and newly
 * compiled programs are published to it for the next batch.
 *
 * A batch summary and the disk-cache counters go to stderr, so
 * stdout stays pure protocol.
 *
 * Exit status: 0 when every request succeeded, 1 when any request
 * failed or was malformed (the batch still ran to completion), 2 on
 * usage or input-file errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "driver/compilecache.hh"
#include "driver/diskcache.hh"
#include "service/serve.hh"

using namespace selvec;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: selvec_serve [requests.jsonl] [--output FILE]\n"
        "                    [--jobs N] [--cache-dir DIR]\n"
        "                    [--cache-max-mb N] [--no-cache]\n");
    return 2;
}

/** Parse "--flag VAL" or "--flag=VAL"; advances *i past the value. */
bool
flagValue(int argc, char **argv, int *i, const char *flag,
          const char **out)
{
    size_t n = std::strlen(flag);
    if (std::strncmp(argv[*i], flag, n) != 0)
        return false;
    if (argv[*i][n] == '=') {
        *out = argv[*i] + n + 1;
        return true;
    }
    if (argv[*i][n] == '\0' && *i + 1 < argc) {
        *out = argv[++*i];
        return true;
    }
    return false;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const char *inputPath = nullptr;
    const char *outputPath = nullptr;
    const char *cacheDir = nullptr;
    const char *value = nullptr;
    int64_t cacheMaxMb = 0;
    ServeOptions options;

    for (int i = 1; i < argc; ++i) {
        if (flagValue(argc, argv, &i, "--output", &value)) {
            outputPath = value;
        } else if (flagValue(argc, argv, &i, "--jobs", &value)) {
            options.jobs = std::atoi(value);
        } else if (flagValue(argc, argv, &i, "--cache-dir", &value)) {
            cacheDir = value;
        } else if (flagValue(argc, argv, &i, "--cache-max-mb",
                             &value)) {
            cacheMaxMb = std::atoll(value);
        } else if (std::strcmp(argv[i], "--no-cache") == 0) {
            compileCacheSetEnabled(false);
        } else if (std::strncmp(argv[i], "--", 2) == 0) {
            return usage();
        } else if (inputPath == nullptr) {
            inputPath = argv[i];
        } else {
            return usage();
        }
    }

    if (cacheDir != nullptr)
        diskCacheConfigure(cacheDir, cacheMaxMb);

    std::ifstream inFile;
    if (inputPath != nullptr) {
        inFile.open(inputPath);
        if (!inFile) {
            std::fprintf(stderr,
                         "selvec_serve: cannot open '%s'\n",
                         inputPath);
            return 2;
        }
    }
    std::istream &in = inputPath != nullptr
                           ? static_cast<std::istream &>(inFile)
                           : std::cin;

    std::ofstream outFile;
    if (outputPath != nullptr) {
        outFile.open(outputPath, std::ios::trunc);
        if (!outFile) {
            std::fprintf(stderr,
                         "selvec_serve: cannot write '%s'\n",
                         outputPath);
            return 2;
        }
    }
    std::ostream &out = outputPath != nullptr
                            ? static_cast<std::ostream &>(outFile)
                            : std::cout;

    ServeSummary summary = serveBatch(in, out, options);

    std::fprintf(stderr,
                 "selvec_serve: %lld requests, %lld ok, %lld failed, "
                 "%lld malformed, %lld deduped\n",
                 static_cast<long long>(summary.requests),
                 static_cast<long long>(summary.ok),
                 static_cast<long long>(summary.failed),
                 static_cast<long long>(summary.malformed),
                 static_cast<long long>(summary.deduped));
    DiskCacheCounters c = diskCacheCounters();
    std::fprintf(stderr,
                 "cache.disk: hit=%lld miss=%lld store=%lld "
                 "evict=%lld corrupt=%lld\n",
                 static_cast<long long>(c.hit),
                 static_cast<long long>(c.miss),
                 static_cast<long long>(c.store),
                 static_cast<long long>(c.evict),
                 static_cast<long long>(c.corrupt));

    return summary.failed > 0 || summary.malformed > 0 ? 1 : 0;
}
