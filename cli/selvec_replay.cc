/**
 * @file
 * selvec_replay: deterministically re-run a repro bundle.
 *
 *   selvec_replay <bundle.json> [--verbose]
 *
 * Loads a selvec-repro-v1 bundle (written by evaluateSuite under
 * --repro-dir, or by selvec_fuzz), re-arms the recorded fault plan
 * and deadline, re-compiles the loop with its exact options and
 * machine, re-executes bounded, and verifies against the reference
 * interpreter.
 *
 * Exit status: 0 when the replay reproduces the recorded error code
 * (the bundle is a faithful repro), 1 when it does not (the failure
 * was environmental, or the bug moved), 2 on usage or load errors.
 */

#include <cstdio>
#include <cstring>

#include "driver/repro.hh"

using namespace selvec;

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--verbose") == 0)
            verbose = true;
        else if (path == nullptr)
            path = argv[i];
        else
            path = "";
    }
    if (path == nullptr || *path == '\0') {
        std::fprintf(stderr,
                     "usage: selvec_replay <bundle.json> [--verbose]\n");
        return 2;
    }

    Expected<ReproBundle> loaded = loadReproBundle(path);
    if (!loaded.ok()) {
        std::fprintf(stderr, "selvec_replay: %s\n",
                     loaded.status().str().c_str());
        return 2;
    }
    const ReproBundle &bundle = loaded.value();

    std::printf("replaying %s: loop '%s', technique %s, trip %lld\n",
                path, bundle.name.c_str(),
                techniqueName(bundle.technique),
                static_cast<long long>(bundle.tripCount));
    std::printf("  recorded: %s\n", bundle.failure.str().c_str());
    if (verbose) {
        std::printf("  machine: %s\n", bundle.machine.name.c_str());
        std::printf("  fault plan: %s\n",
                    bundle.faultPlan.empty() ? "(none)"
                                             : bundle.faultPlan.c_str());
        std::printf("  deadline: %lld ms\n",
                    static_cast<long long>(bundle.deadlineMs));
    }

    ReplayOutcome outcome = replayBundle(bundle);
    std::printf("  replayed: %s\n", outcome.status.str().c_str());
    if (outcome.reproduced) {
        std::printf("reproduced: error code '%s' matches\n",
                    errorCodeName(bundle.failure.code()));
        return 0;
    }
    std::printf("NOT reproduced: recorded '%s', replay produced '%s'\n",
                errorCodeName(bundle.failure.code()),
                errorCodeName(outcome.status.code()));
    return 1;
}
