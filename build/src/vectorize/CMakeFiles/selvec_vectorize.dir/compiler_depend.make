# Empty compiler generated dependencies file for selvec_vectorize.
# This may be replaced when dependencies are built.
