file(REMOVE_RECURSE
  "libselvec_vectorize.a"
)
