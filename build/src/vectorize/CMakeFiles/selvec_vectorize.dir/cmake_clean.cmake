file(REMOVE_RECURSE
  "CMakeFiles/selvec_vectorize.dir/full.cc.o"
  "CMakeFiles/selvec_vectorize.dir/full.cc.o.d"
  "CMakeFiles/selvec_vectorize.dir/traditional.cc.o"
  "CMakeFiles/selvec_vectorize.dir/traditional.cc.o.d"
  "libselvec_vectorize.a"
  "libselvec_vectorize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvec_vectorize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
