# CMake generated Testfile for 
# Source directory: /root/repo/src/vectorize
# Build directory: /root/repo/build/src/vectorize
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
