file(REMOVE_RECURSE
  "libselvec_ir.a"
)
