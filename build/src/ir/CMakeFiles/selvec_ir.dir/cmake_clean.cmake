file(REMOVE_RECURSE
  "CMakeFiles/selvec_ir.dir/builder.cc.o"
  "CMakeFiles/selvec_ir.dir/builder.cc.o.d"
  "CMakeFiles/selvec_ir.dir/defuse.cc.o"
  "CMakeFiles/selvec_ir.dir/defuse.cc.o.d"
  "CMakeFiles/selvec_ir.dir/loop.cc.o"
  "CMakeFiles/selvec_ir.dir/loop.cc.o.d"
  "CMakeFiles/selvec_ir.dir/opcodes.cc.o"
  "CMakeFiles/selvec_ir.dir/opcodes.cc.o.d"
  "CMakeFiles/selvec_ir.dir/types.cc.o"
  "CMakeFiles/selvec_ir.dir/types.cc.o.d"
  "CMakeFiles/selvec_ir.dir/verifier.cc.o"
  "CMakeFiles/selvec_ir.dir/verifier.cc.o.d"
  "libselvec_ir.a"
  "libselvec_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvec_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
