# Empty dependencies file for selvec_ir.
# This may be replaced when dependencies are built.
