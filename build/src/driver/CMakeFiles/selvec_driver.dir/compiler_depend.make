# Empty compiler generated dependencies file for selvec_driver.
# This may be replaced when dependencies are built.
