file(REMOVE_RECURSE
  "libselvec_driver.a"
)
