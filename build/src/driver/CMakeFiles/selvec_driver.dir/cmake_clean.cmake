file(REMOVE_RECURSE
  "CMakeFiles/selvec_driver.dir/driver.cc.o"
  "CMakeFiles/selvec_driver.dir/driver.cc.o.d"
  "CMakeFiles/selvec_driver.dir/evaluate.cc.o"
  "CMakeFiles/selvec_driver.dir/evaluate.cc.o.d"
  "libselvec_driver.a"
  "libselvec_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvec_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
