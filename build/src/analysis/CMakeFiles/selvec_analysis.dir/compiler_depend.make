# Empty compiler generated dependencies file for selvec_analysis.
# This may be replaced when dependencies are built.
