file(REMOVE_RECURSE
  "libselvec_analysis.a"
)
