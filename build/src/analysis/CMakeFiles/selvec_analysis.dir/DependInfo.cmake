
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/depgraph.cc" "src/analysis/CMakeFiles/selvec_analysis.dir/depgraph.cc.o" "gcc" "src/analysis/CMakeFiles/selvec_analysis.dir/depgraph.cc.o.d"
  "/root/repo/src/analysis/memdep.cc" "src/analysis/CMakeFiles/selvec_analysis.dir/memdep.cc.o" "gcc" "src/analysis/CMakeFiles/selvec_analysis.dir/memdep.cc.o.d"
  "/root/repo/src/analysis/recmii.cc" "src/analysis/CMakeFiles/selvec_analysis.dir/recmii.cc.o" "gcc" "src/analysis/CMakeFiles/selvec_analysis.dir/recmii.cc.o.d"
  "/root/repo/src/analysis/scc.cc" "src/analysis/CMakeFiles/selvec_analysis.dir/scc.cc.o" "gcc" "src/analysis/CMakeFiles/selvec_analysis.dir/scc.cc.o.d"
  "/root/repo/src/analysis/vectorizable.cc" "src/analysis/CMakeFiles/selvec_analysis.dir/vectorizable.cc.o" "gcc" "src/analysis/CMakeFiles/selvec_analysis.dir/vectorizable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/selvec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/selvec_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/selvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
