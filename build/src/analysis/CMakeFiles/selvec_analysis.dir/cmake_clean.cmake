file(REMOVE_RECURSE
  "CMakeFiles/selvec_analysis.dir/depgraph.cc.o"
  "CMakeFiles/selvec_analysis.dir/depgraph.cc.o.d"
  "CMakeFiles/selvec_analysis.dir/memdep.cc.o"
  "CMakeFiles/selvec_analysis.dir/memdep.cc.o.d"
  "CMakeFiles/selvec_analysis.dir/recmii.cc.o"
  "CMakeFiles/selvec_analysis.dir/recmii.cc.o.d"
  "CMakeFiles/selvec_analysis.dir/scc.cc.o"
  "CMakeFiles/selvec_analysis.dir/scc.cc.o.d"
  "CMakeFiles/selvec_analysis.dir/vectorizable.cc.o"
  "CMakeFiles/selvec_analysis.dir/vectorizable.cc.o.d"
  "libselvec_analysis.a"
  "libselvec_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvec_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
