file(REMOVE_RECURSE
  "CMakeFiles/selvec_lir.dir/parser.cc.o"
  "CMakeFiles/selvec_lir.dir/parser.cc.o.d"
  "CMakeFiles/selvec_lir.dir/writer.cc.o"
  "CMakeFiles/selvec_lir.dir/writer.cc.o.d"
  "libselvec_lir.a"
  "libselvec_lir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvec_lir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
