file(REMOVE_RECURSE
  "libselvec_lir.a"
)
