# Empty dependencies file for selvec_lir.
# This may be replaced when dependencies are built.
