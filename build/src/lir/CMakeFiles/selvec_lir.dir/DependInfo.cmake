
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lir/parser.cc" "src/lir/CMakeFiles/selvec_lir.dir/parser.cc.o" "gcc" "src/lir/CMakeFiles/selvec_lir.dir/parser.cc.o.d"
  "/root/repo/src/lir/writer.cc" "src/lir/CMakeFiles/selvec_lir.dir/writer.cc.o" "gcc" "src/lir/CMakeFiles/selvec_lir.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/selvec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/selvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
