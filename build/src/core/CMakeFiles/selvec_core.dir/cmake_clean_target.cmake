file(REMOVE_RECURSE
  "libselvec_core.a"
)
