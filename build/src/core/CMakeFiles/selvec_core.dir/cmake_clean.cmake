file(REMOVE_RECURSE
  "CMakeFiles/selvec_core.dir/comm.cc.o"
  "CMakeFiles/selvec_core.dir/comm.cc.o.d"
  "CMakeFiles/selvec_core.dir/costmodel.cc.o"
  "CMakeFiles/selvec_core.dir/costmodel.cc.o.d"
  "CMakeFiles/selvec_core.dir/itersplit.cc.o"
  "CMakeFiles/selvec_core.dir/itersplit.cc.o.d"
  "CMakeFiles/selvec_core.dir/partition.cc.o"
  "CMakeFiles/selvec_core.dir/partition.cc.o.d"
  "CMakeFiles/selvec_core.dir/transform.cc.o"
  "CMakeFiles/selvec_core.dir/transform.cc.o.d"
  "libselvec_core.a"
  "libselvec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
