
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comm.cc" "src/core/CMakeFiles/selvec_core.dir/comm.cc.o" "gcc" "src/core/CMakeFiles/selvec_core.dir/comm.cc.o.d"
  "/root/repo/src/core/costmodel.cc" "src/core/CMakeFiles/selvec_core.dir/costmodel.cc.o" "gcc" "src/core/CMakeFiles/selvec_core.dir/costmodel.cc.o.d"
  "/root/repo/src/core/itersplit.cc" "src/core/CMakeFiles/selvec_core.dir/itersplit.cc.o" "gcc" "src/core/CMakeFiles/selvec_core.dir/itersplit.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/selvec_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/selvec_core.dir/partition.cc.o.d"
  "/root/repo/src/core/transform.cc" "src/core/CMakeFiles/selvec_core.dir/transform.cc.o" "gcc" "src/core/CMakeFiles/selvec_core.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/selvec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/selvec_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/selvec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/selvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
