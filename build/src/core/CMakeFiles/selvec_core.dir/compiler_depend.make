# Empty compiler generated dependencies file for selvec_core.
# This may be replaced when dependencies are built.
