# Empty dependencies file for selvec_support.
# This may be replaced when dependencies are built.
