file(REMOVE_RECURSE
  "libselvec_support.a"
)
