file(REMOVE_RECURSE
  "CMakeFiles/selvec_support.dir/logging.cc.o"
  "CMakeFiles/selvec_support.dir/logging.cc.o.d"
  "libselvec_support.a"
  "libselvec_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvec_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
