# Empty dependencies file for selvec_sim.
# This may be replaced when dependencies are built.
