file(REMOVE_RECURSE
  "libselvec_sim.a"
)
