file(REMOVE_RECURSE
  "CMakeFiles/selvec_sim.dir/executor.cc.o"
  "CMakeFiles/selvec_sim.dir/executor.cc.o.d"
  "CMakeFiles/selvec_sim.dir/memimage.cc.o"
  "CMakeFiles/selvec_sim.dir/memimage.cc.o.d"
  "CMakeFiles/selvec_sim.dir/rtval.cc.o"
  "CMakeFiles/selvec_sim.dir/rtval.cc.o.d"
  "CMakeFiles/selvec_sim.dir/semantics.cc.o"
  "CMakeFiles/selvec_sim.dir/semantics.cc.o.d"
  "libselvec_sim.a"
  "libselvec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
