
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/executor.cc" "src/sim/CMakeFiles/selvec_sim.dir/executor.cc.o" "gcc" "src/sim/CMakeFiles/selvec_sim.dir/executor.cc.o.d"
  "/root/repo/src/sim/memimage.cc" "src/sim/CMakeFiles/selvec_sim.dir/memimage.cc.o" "gcc" "src/sim/CMakeFiles/selvec_sim.dir/memimage.cc.o.d"
  "/root/repo/src/sim/rtval.cc" "src/sim/CMakeFiles/selvec_sim.dir/rtval.cc.o" "gcc" "src/sim/CMakeFiles/selvec_sim.dir/rtval.cc.o.d"
  "/root/repo/src/sim/semantics.cc" "src/sim/CMakeFiles/selvec_sim.dir/semantics.cc.o" "gcc" "src/sim/CMakeFiles/selvec_sim.dir/semantics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/selvec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/selvec_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/selvec_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/selvec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/selvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
