# Empty dependencies file for selvec_machine.
# This may be replaced when dependencies are built.
