file(REMOVE_RECURSE
  "libselvec_machine.a"
)
