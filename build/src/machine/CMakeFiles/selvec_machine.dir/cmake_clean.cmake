file(REMOVE_RECURSE
  "CMakeFiles/selvec_machine.dir/binpack.cc.o"
  "CMakeFiles/selvec_machine.dir/binpack.cc.o.d"
  "CMakeFiles/selvec_machine.dir/machine.cc.o"
  "CMakeFiles/selvec_machine.dir/machine.cc.o.d"
  "libselvec_machine.a"
  "libselvec_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvec_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
