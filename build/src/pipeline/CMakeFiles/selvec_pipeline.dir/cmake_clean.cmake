file(REMOVE_RECURSE
  "CMakeFiles/selvec_pipeline.dir/checker.cc.o"
  "CMakeFiles/selvec_pipeline.dir/checker.cc.o.d"
  "CMakeFiles/selvec_pipeline.dir/codegen.cc.o"
  "CMakeFiles/selvec_pipeline.dir/codegen.cc.o.d"
  "CMakeFiles/selvec_pipeline.dir/lowering.cc.o"
  "CMakeFiles/selvec_pipeline.dir/lowering.cc.o.d"
  "CMakeFiles/selvec_pipeline.dir/modsched.cc.o"
  "CMakeFiles/selvec_pipeline.dir/modsched.cc.o.d"
  "CMakeFiles/selvec_pipeline.dir/printer.cc.o"
  "CMakeFiles/selvec_pipeline.dir/printer.cc.o.d"
  "CMakeFiles/selvec_pipeline.dir/regpressure.cc.o"
  "CMakeFiles/selvec_pipeline.dir/regpressure.cc.o.d"
  "libselvec_pipeline.a"
  "libselvec_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvec_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
