file(REMOVE_RECURSE
  "libselvec_pipeline.a"
)
