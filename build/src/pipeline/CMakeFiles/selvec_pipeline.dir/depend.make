# Empty dependencies file for selvec_pipeline.
# This may be replaced when dependencies are built.
