
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/checker.cc" "src/pipeline/CMakeFiles/selvec_pipeline.dir/checker.cc.o" "gcc" "src/pipeline/CMakeFiles/selvec_pipeline.dir/checker.cc.o.d"
  "/root/repo/src/pipeline/codegen.cc" "src/pipeline/CMakeFiles/selvec_pipeline.dir/codegen.cc.o" "gcc" "src/pipeline/CMakeFiles/selvec_pipeline.dir/codegen.cc.o.d"
  "/root/repo/src/pipeline/lowering.cc" "src/pipeline/CMakeFiles/selvec_pipeline.dir/lowering.cc.o" "gcc" "src/pipeline/CMakeFiles/selvec_pipeline.dir/lowering.cc.o.d"
  "/root/repo/src/pipeline/modsched.cc" "src/pipeline/CMakeFiles/selvec_pipeline.dir/modsched.cc.o" "gcc" "src/pipeline/CMakeFiles/selvec_pipeline.dir/modsched.cc.o.d"
  "/root/repo/src/pipeline/printer.cc" "src/pipeline/CMakeFiles/selvec_pipeline.dir/printer.cc.o" "gcc" "src/pipeline/CMakeFiles/selvec_pipeline.dir/printer.cc.o.d"
  "/root/repo/src/pipeline/regpressure.cc" "src/pipeline/CMakeFiles/selvec_pipeline.dir/regpressure.cc.o" "gcc" "src/pipeline/CMakeFiles/selvec_pipeline.dir/regpressure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/selvec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/selvec_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/selvec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/selvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
