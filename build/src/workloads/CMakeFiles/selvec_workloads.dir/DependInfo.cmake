
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/generator.cc" "src/workloads/CMakeFiles/selvec_workloads.dir/generator.cc.o" "gcc" "src/workloads/CMakeFiles/selvec_workloads.dir/generator.cc.o.d"
  "/root/repo/src/workloads/suite_apsi.cc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_apsi.cc.o" "gcc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_apsi.cc.o.d"
  "/root/repo/src/workloads/suite_hydro2d.cc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_hydro2d.cc.o" "gcc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_hydro2d.cc.o.d"
  "/root/repo/src/workloads/suite_mgrid.cc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_mgrid.cc.o" "gcc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_mgrid.cc.o.d"
  "/root/repo/src/workloads/suite_nasa7.cc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_nasa7.cc.o" "gcc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_nasa7.cc.o.d"
  "/root/repo/src/workloads/suite_su2cor.cc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_su2cor.cc.o" "gcc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_su2cor.cc.o.d"
  "/root/repo/src/workloads/suite_swim.cc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_swim.cc.o" "gcc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_swim.cc.o.d"
  "/root/repo/src/workloads/suite_tomcatv.cc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_tomcatv.cc.o" "gcc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_tomcatv.cc.o.d"
  "/root/repo/src/workloads/suite_turb3d.cc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_turb3d.cc.o" "gcc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_turb3d.cc.o.d"
  "/root/repo/src/workloads/suite_wave5.cc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_wave5.cc.o" "gcc" "src/workloads/CMakeFiles/selvec_workloads.dir/suite_wave5.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/selvec_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/selvec_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lir/CMakeFiles/selvec_lir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/selvec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/selvec_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/selvec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/selvec_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/selvec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/selvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
