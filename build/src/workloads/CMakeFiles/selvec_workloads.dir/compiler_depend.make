# Empty compiler generated dependencies file for selvec_workloads.
# This may be replaced when dependencies are built.
