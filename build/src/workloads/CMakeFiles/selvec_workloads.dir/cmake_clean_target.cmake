file(REMOVE_RECURSE
  "libselvec_workloads.a"
)
