file(REMOVE_RECURSE
  "CMakeFiles/selvec_workloads.dir/generator.cc.o"
  "CMakeFiles/selvec_workloads.dir/generator.cc.o.d"
  "CMakeFiles/selvec_workloads.dir/suite_apsi.cc.o"
  "CMakeFiles/selvec_workloads.dir/suite_apsi.cc.o.d"
  "CMakeFiles/selvec_workloads.dir/suite_hydro2d.cc.o"
  "CMakeFiles/selvec_workloads.dir/suite_hydro2d.cc.o.d"
  "CMakeFiles/selvec_workloads.dir/suite_mgrid.cc.o"
  "CMakeFiles/selvec_workloads.dir/suite_mgrid.cc.o.d"
  "CMakeFiles/selvec_workloads.dir/suite_nasa7.cc.o"
  "CMakeFiles/selvec_workloads.dir/suite_nasa7.cc.o.d"
  "CMakeFiles/selvec_workloads.dir/suite_su2cor.cc.o"
  "CMakeFiles/selvec_workloads.dir/suite_su2cor.cc.o.d"
  "CMakeFiles/selvec_workloads.dir/suite_swim.cc.o"
  "CMakeFiles/selvec_workloads.dir/suite_swim.cc.o.d"
  "CMakeFiles/selvec_workloads.dir/suite_tomcatv.cc.o"
  "CMakeFiles/selvec_workloads.dir/suite_tomcatv.cc.o.d"
  "CMakeFiles/selvec_workloads.dir/suite_turb3d.cc.o"
  "CMakeFiles/selvec_workloads.dir/suite_turb3d.cc.o.d"
  "CMakeFiles/selvec_workloads.dir/suite_wave5.cc.o"
  "CMakeFiles/selvec_workloads.dir/suite_wave5.cc.o.d"
  "CMakeFiles/selvec_workloads.dir/workloads.cc.o"
  "CMakeFiles/selvec_workloads.dir/workloads.cc.o.d"
  "libselvec_workloads.a"
  "libselvec_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvec_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
