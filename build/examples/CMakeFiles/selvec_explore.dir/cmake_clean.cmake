file(REMOVE_RECURSE
  "CMakeFiles/selvec_explore.dir/explore.cpp.o"
  "CMakeFiles/selvec_explore.dir/explore.cpp.o.d"
  "selvec_explore"
  "selvec_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvec_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
