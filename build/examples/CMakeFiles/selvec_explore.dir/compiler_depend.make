# Empty compiler generated dependencies file for selvec_explore.
# This may be replaced when dependencies are built.
