file(REMOVE_RECURSE
  "CMakeFiles/selvec_suites.dir/suite_report.cpp.o"
  "CMakeFiles/selvec_suites.dir/suite_report.cpp.o.d"
  "selvec_suites"
  "selvec_suites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selvec_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
