# Empty compiler generated dependencies file for selvec_suites.
# This may be replaced when dependencies are built.
