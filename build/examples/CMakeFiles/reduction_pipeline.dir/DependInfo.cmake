
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/reduction_pipeline.cpp" "examples/CMakeFiles/reduction_pipeline.dir/reduction_pipeline.cpp.o" "gcc" "examples/CMakeFiles/reduction_pipeline.dir/reduction_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/selvec_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/lir/CMakeFiles/selvec_lir.dir/DependInfo.cmake"
  "/root/repo/build/src/vectorize/CMakeFiles/selvec_vectorize.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/selvec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/selvec_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/selvec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/selvec_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/selvec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/selvec_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/selvec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/selvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
