# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_runs "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stencil_pipeline_runs "/root/repo/build/examples/stencil_pipeline")
set_tests_properties(example_stencil_pipeline_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_machine_runs "/root/repo/build/examples/custom_machine")
set_tests_properties(example_custom_machine_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_selvec_explore_runs "/root/repo/build/examples/selvec_explore")
set_tests_properties(example_selvec_explore_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_selvec_suites_runs "/root/repo/build/examples/selvec_suites")
set_tests_properties(example_selvec_suites_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reduction_pipeline_runs "/root/repo/build/examples/reduction_pipeline")
set_tests_properties(example_reduction_pipeline_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(explore_saxpy "/root/repo/build/examples/selvec_explore" "/root/repo/kernels/saxpy.lir" "512")
set_tests_properties(explore_saxpy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(explore_dot "/root/repo/build/examples/selvec_explore" "/root/repo/kernels/dot.lir" "512")
set_tests_properties(explore_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(explore_stencil5 "/root/repo/build/examples/selvec_explore" "/root/repo/kernels/stencil5.lir" "512")
set_tests_properties(explore_stencil5 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(explore_butterfly "/root/repo/build/examples/selvec_explore" "/root/repo/kernels/butterfly.lir" "512")
set_tests_properties(explore_butterfly PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(explore_cmul "/root/repo/build/examples/selvec_explore" "/root/repo/kernels/cmul.lir" "512")
set_tests_properties(explore_cmul PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(explore_search "/root/repo/build/examples/selvec_explore" "/root/repo/kernels/search.lir" "1024")
set_tests_properties(explore_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
