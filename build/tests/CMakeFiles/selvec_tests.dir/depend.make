# Empty dependencies file for selvec_tests.
# This may be replaced when dependencies are built.
