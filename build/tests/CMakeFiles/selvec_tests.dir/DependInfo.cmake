
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alignment.cc" "tests/CMakeFiles/selvec_tests.dir/test_alignment.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_alignment.cc.o.d"
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/selvec_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_codegen.cc" "tests/CMakeFiles/selvec_tests.dir/test_codegen.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_codegen.cc.o.d"
  "/root/repo/tests/test_driver.cc" "tests/CMakeFiles/selvec_tests.dir/test_driver.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_driver.cc.o.d"
  "/root/repo/tests/test_earlyexit.cc" "tests/CMakeFiles/selvec_tests.dir/test_earlyexit.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_earlyexit.cc.o.d"
  "/root/repo/tests/test_ir.cc" "tests/CMakeFiles/selvec_tests.dir/test_ir.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_ir.cc.o.d"
  "/root/repo/tests/test_itersplit.cc" "tests/CMakeFiles/selvec_tests.dir/test_itersplit.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_itersplit.cc.o.d"
  "/root/repo/tests/test_lir.cc" "tests/CMakeFiles/selvec_tests.dir/test_lir.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_lir.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/selvec_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_machines.cc" "tests/CMakeFiles/selvec_tests.dir/test_machines.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_machines.cc.o.d"
  "/root/repo/tests/test_memdep.cc" "tests/CMakeFiles/selvec_tests.dir/test_memdep.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_memdep.cc.o.d"
  "/root/repo/tests/test_partition.cc" "tests/CMakeFiles/selvec_tests.dir/test_partition.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_partition.cc.o.d"
  "/root/repo/tests/test_pipeline.cc" "tests/CMakeFiles/selvec_tests.dir/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_pipeline.cc.o.d"
  "/root/repo/tests/test_property.cc" "tests/CMakeFiles/selvec_tests.dir/test_property.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_property.cc.o.d"
  "/root/repo/tests/test_reduction.cc" "tests/CMakeFiles/selvec_tests.dir/test_reduction.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_reduction.cc.o.d"
  "/root/repo/tests/test_regpressure.cc" "tests/CMakeFiles/selvec_tests.dir/test_regpressure.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_regpressure.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/selvec_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/selvec_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/selvec_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/test_traditional.cc" "tests/CMakeFiles/selvec_tests.dir/test_traditional.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_traditional.cc.o.d"
  "/root/repo/tests/test_transform.cc" "tests/CMakeFiles/selvec_tests.dir/test_transform.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_transform.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/selvec_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/selvec_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/selvec_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/lir/CMakeFiles/selvec_lir.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/selvec_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vectorize/CMakeFiles/selvec_vectorize.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/selvec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/selvec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/selvec_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/selvec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/selvec_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/selvec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/selvec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
