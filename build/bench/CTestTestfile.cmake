# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_table2_runs "/root/repo/build/bench/bench_table2")
set_tests_properties(bench_table2_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table3_runs "/root/repo/build/bench/bench_table3")
set_tests_properties(bench_table3_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table4_runs "/root/repo/build/bench/bench_table4")
set_tests_properties(bench_table4_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table5_runs "/root/repo/build/bench/bench_table5")
set_tests_properties(bench_table5_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_figure1_runs "/root/repo/build/bench/bench_figure1")
set_tests_properties(bench_figure1_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_ablation_runs "/root/repo/build/bench/bench_ablation")
set_tests_properties(bench_ablation_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_regpressure_runs "/root/repo/build/bench/bench_regpressure")
set_tests_properties(bench_regpressure_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_machines_runs "/root/repo/build/bench/bench_machines")
set_tests_properties(bench_machines_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_partitioner_runs "/root/repo/build/bench/bench_partitioner" "--benchmark_min_time=0.01")
set_tests_properties(bench_partitioner_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
