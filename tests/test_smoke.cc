/**
 * @file
 * End-to-end smoke tests: the Figure 1 dot product compiled under all
 * four techniques on both stock machines, with the pipelined execution
 * checked bit-for-bit against the sequential reference.
 */

#include <gtest/gtest.h>

#include "driver/driver.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"

namespace selvec
{
namespace
{

const char *kDotProduct = R"(
array X f64 4096
array Y f64 4096

loop dot {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        y = load Y[i]
        t = fmul x y
        s1 = fadd s t
    }
    liveout s1
}
)";

class SmokeTest : public ::testing::TestWithParam<
                      std::tuple<Technique, bool, int64_t>>
{
};

TEST_P(SmokeTest, MatchesReference)
{
    auto [technique, use_toy, n] = GetParam();
    Module module = parseLirOrDie(kDotProduct);
    Machine machine = use_toy ? toyMachine() : paperMachine();
    const Loop &loop = module.loops.front();

    LiveEnv env;
    env["s0"] = RtVal::scalarF(1.5);

    MemoryImage ref_mem(module.arrays);
    ref_mem.fillPattern(42);
    ExecResult ref = runReference(loop, module.arrays, machine, ref_mem,
                                  env, n);

    CompiledProgram program =
        compileLoop(loop, module.arrays, machine, technique);
    MemoryImage mem(module.arrays);
    mem.fillPattern(42);
    ExecResult got =
        runCompiled(program, module.arrays, machine, mem, env, n);

    EXPECT_EQ(mem.diff(ref_mem), "");
    ASSERT_TRUE(got.env.count("s1"));
    ASSERT_TRUE(ref.env.count("s1"));
    EXPECT_EQ(got.env.at("s1"), ref.env.at("s1"))
        << "got " << got.env.at("s1").str() << " want "
        << ref.env.at("s1").str();
    EXPECT_GT(got.cycles, 0);
}

std::string
smokeName(
    const ::testing::TestParamInfo<std::tuple<Technique, bool, int64_t>>
        &info)
{
    Technique t = std::get<0>(info.param);
    bool toy = std::get<1>(info.param);
    int64_t n = std::get<2>(info.param);
    return std::string(techniqueName(t)) + (toy ? "_toy_" : "_paper_") +
           "n" + std::to_string(n);
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, SmokeTest,
    ::testing::Combine(
        ::testing::Values(Technique::ModuloOnly, Technique::Traditional,
                          Technique::Full, Technique::Selective),
        ::testing::Bool(),
        ::testing::Values<int64_t>(1, 2, 7, 64, 65)),
    smokeName);

/** Figure 1's headline: selective vectorization reaches II 1.0 on the
 *  toy machine where the alternatives cannot. */
TEST(Figure1, SelectiveReachesIiOne)
{
    Module module = parseLirOrDie(kDotProduct);
    Machine machine = toyMachine();
    const Loop &loop = module.loops.front();

    ArrayTable arrays = module.arrays;
    CompiledProgram sel =
        compileLoop(loop, arrays, machine, Technique::Selective);
    EXPECT_DOUBLE_EQ(sel.iiPerIteration(), 1.0);

    CompiledProgram full =
        compileLoop(loop, arrays, machine, Technique::Full);
    EXPECT_DOUBLE_EQ(full.iiPerIteration(), 1.5);

    CompiledProgram trad =
        compileLoop(loop, arrays, machine, Technique::Traditional);
    EXPECT_DOUBLE_EQ(trad.iiPerIteration(), 3.0);
}

} // anonymous namespace
} // namespace selvec
