/**
 * @file
 * Unit tests for the simulator: memory image, per-opcode semantics,
 * and the loop execution engine in both modes.
 */

#include <gtest/gtest.h>

#include "analysis/depgraph.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "pipeline/lowering.hh"
#include "pipeline/modsched.hh"
#include "sim/executor.hh"
#include "sim/semantics.hh"

namespace selvec
{
namespace
{

// ------------------------------------------------------------- memimage

TEST(MemImage, StoreLoadRoundTrip)
{
    ArrayTable arrays;
    ArrayId f = arrays.add(ArrayInfo{"F", Type::F64, 16, false, 2});
    ArrayId i = arrays.add(ArrayInfo{"I", Type::I64, 16, false, 2});
    MemoryImage mem(arrays);
    mem.storeF(f, 3, 1.5);
    mem.storeI(i, 5, -42);
    EXPECT_DOUBLE_EQ(mem.loadF(f, 3), 1.5);
    EXPECT_EQ(mem.loadI(i, 5), -42);
}

TEST(MemImage, GuardReadsAllowedStoresNot)
{
    ArrayTable arrays;
    ArrayId f = arrays.add(ArrayInfo{"F", Type::F64, 16, false, 2});
    MemoryImage mem(arrays);
    EXPECT_DOUBLE_EQ(mem.loadF(f, -2), 0.0);
    EXPECT_DOUBLE_EQ(mem.loadF(f, 17), 0.0);
    EXPECT_DEATH(mem.storeF(f, -1, 1.0), "out of bounds");
    EXPECT_DEATH(mem.storeF(f, 16, 1.0), "out of bounds");
}

TEST(MemImage, DiffFindsFirstMismatch)
{
    ArrayTable arrays;
    arrays.add(ArrayInfo{"F", Type::F64, 16, false, 2});
    MemoryImage a(arrays), b(arrays);
    a.fillPattern(1);
    b.fillPattern(1);
    EXPECT_EQ(a.diff(b), "");
    b.storeF(0, 7, 123.0);
    EXPECT_NE(a.diff(b), "");
}

TEST(MemImage, DiffIgnoresSynthesizedArrays)
{
    ArrayTable arrays;
    arrays.add(ArrayInfo{"F", Type::F64, 16, false, 2});
    arrays.add(ArrayInfo{"T", Type::F64, 16, true, 2});
    MemoryImage a(arrays), b(arrays);
    b.storeF(1, 3, 9.0);   // synthesized array differs
    EXPECT_EQ(a.diff(b), "");
}

TEST(MemImage, FillPatternDeterministic)
{
    ArrayTable arrays;
    arrays.add(ArrayInfo{"F", Type::F64, 64, false, 2});
    MemoryImage a(arrays), b(arrays);
    a.fillPattern(7);
    b.fillPattern(7);
    EXPECT_EQ(a.diff(b), "");
    b.fillPattern(8);
    EXPECT_NE(a.diff(b), "");
}

// ------------------------------------------------------------ semantics

class OpSemantics : public ::testing::Test
{
  protected:
    OpSemantics()
    {
        farr = arrays.add(ArrayInfo{"F", Type::F64, 64, false, 2});
        mem = std::make_unique<MemoryImage>(arrays);
    }

    RtVal
    eval(Opcode opcode, std::vector<RtVal> operands, int lane = 0)
    {
        Operation op;
        op.opcode = opcode;
        op.lane = lane;
        op.srcs.assign(operands.size(), 0);
        return evalOp(op, operands, 0, 2, *mem);
    }

    ArrayTable arrays;
    ArrayId farr;
    std::unique_ptr<MemoryImage> mem;
};

TEST_F(OpSemantics, ScalarArithmetic)
{
    EXPECT_DOUBLE_EQ(eval(Opcode::FAdd, {RtVal::scalarF(1.5),
                                         RtVal::scalarF(2.0)})
                         .laneF(0),
                     3.5);
    EXPECT_DOUBLE_EQ(eval(Opcode::FSub, {RtVal::scalarF(1.0),
                                         RtVal::scalarF(0.25)})
                         .laneF(0),
                     0.75);
    EXPECT_DOUBLE_EQ(eval(Opcode::FMax, {RtVal::scalarF(-1.0),
                                         RtVal::scalarF(2.0)})
                         .laneF(0),
                     2.0);
    EXPECT_DOUBLE_EQ(eval(Opcode::FAbs, {RtVal::scalarF(-3.0)}).laneF(0),
                     3.0);
    EXPECT_EQ(eval(Opcode::IShl, {RtVal::scalarI(3), RtVal::scalarI(2)})
                  .laneI(0),
              12);
    EXPECT_EQ(eval(Opcode::IXor, {RtVal::scalarI(6), RtVal::scalarI(3)})
                  .laneI(0),
              5);
}

TEST_F(OpSemantics, FmaMatchesMulAdd)
{
    RtVal a = RtVal::scalarF(1.5), b = RtVal::scalarF(-2.0),
          c = RtVal::scalarF(0.5);
    RtVal fma = eval(Opcode::FMulAdd, {a, b, c});
    EXPECT_DOUBLE_EQ(fma.laneF(0), 1.5 * -2.0 + 0.5);
}

TEST_F(OpSemantics, SafeIntegerDivision)
{
    EXPECT_EQ(safeIDiv(7, 2), 3);
    EXPECT_EQ(safeIDiv(7, 0), 0);
    EXPECT_EQ(safeIDiv(INT64_MIN, -1), 0);
    EXPECT_EQ(eval(Opcode::IDiv, {RtVal::scalarI(9), RtVal::scalarI(0)})
                  .laneI(0),
              0);
}

TEST_F(OpSemantics, VectorLanewise)
{
    RtVal a = RtVal::vectorF({1.0, 2.0});
    RtVal b = RtVal::vectorF({10.0, 20.0});
    RtVal sum = eval(Opcode::VFAdd, {a, b});
    EXPECT_DOUBLE_EQ(sum.laneF(0), 11.0);
    EXPECT_DOUBLE_EQ(sum.laneF(1), 22.0);

    RtVal ia = RtVal::vectorI({3, -4});
    RtVal ib = RtVal::vectorI({5, 4});
    RtVal imin = eval(Opcode::VIMin, {ia, ib});
    EXPECT_EQ(imin.laneI(0), 3);
    EXPECT_EQ(imin.laneI(1), -4);
}

TEST_F(OpSemantics, VMergeWindows)
{
    RtVal a = RtVal::vectorF({1.0, 2.0});
    RtVal b = RtVal::vectorF({3.0, 4.0});
    RtVal w0 = eval(Opcode::VMerge, {a, b}, 0);
    EXPECT_DOUBLE_EQ(w0.laneF(0), 1.0);
    EXPECT_DOUBLE_EQ(w0.laneF(1), 2.0);
    RtVal w1 = eval(Opcode::VMerge, {a, b}, 1);
    EXPECT_DOUBLE_EQ(w1.laneF(0), 2.0);
    EXPECT_DOUBLE_EQ(w1.laneF(1), 3.0);
    RtVal w2 = eval(Opcode::VMerge, {a, b}, 2);
    EXPECT_DOUBLE_EQ(w2.laneF(0), 3.0);
    EXPECT_DOUBLE_EQ(w2.laneF(1), 4.0);
}

TEST_F(OpSemantics, SplatPickAndLaneMoves)
{
    RtVal s = eval(Opcode::VSplat, {RtVal::scalarF(7.0)});
    EXPECT_DOUBLE_EQ(s.laneF(0), 7.0);
    EXPECT_DOUBLE_EQ(s.laneF(1), 7.0);

    RtVal v = RtVal::vectorF({5.0, 6.0});
    EXPECT_DOUBLE_EQ(eval(Opcode::VPick, {v}, 1).laneF(0), 6.0);
    EXPECT_DOUBLE_EQ(eval(Opcode::MovVS, {v}, 0).laneF(0), 5.0);

    Operation mv;
    mv.opcode = Opcode::MovSV;
    mv.lane = 1;
    mv.srcs = {kNoValue, 0};
    RtVal ins = evalOp(mv, {RtVal{}, RtVal::scalarF(9.0)}, 0, 2, *mem);
    EXPECT_DOUBLE_EQ(ins.laneF(1), 9.0);
}

TEST_F(OpSemantics, TransferChannels)
{
    RtVal chan = eval(Opcode::XferStoreS, {RtVal::scalarF(4.5)});
    EXPECT_EQ(chan.type, Type::Chan);
    RtVal back = eval(Opcode::XferLoadS, {chan});
    EXPECT_DOUBLE_EQ(back.laneF(0), 4.5);

    RtVal vchan =
        eval(Opcode::XferStoreV, {RtVal::vectorF({1.0, 2.0})});
    RtVal lane1 = eval(Opcode::XferLoadS, {vchan}, 1);
    EXPECT_DOUBLE_EQ(lane1.laneF(0), 2.0);

    RtVal gather = eval(Opcode::XferLoadV, {chan, chan});
    EXPECT_DOUBLE_EQ(gather.laneF(0), 4.5);
    EXPECT_DOUBLE_EQ(gather.laneF(1), 4.5);
}

TEST_F(OpSemantics, MemoryOpsUseIterationIndex)
{
    Operation st;
    st.opcode = Opcode::Store;
    st.srcs = {0};
    st.ref = AffineRef{farr, 2, 1};
    evalOp(st, {RtVal::scalarF(8.0)}, 5, 2, *mem);
    EXPECT_DOUBLE_EQ(mem->loadF(farr, 11), 8.0);

    Operation ld;
    ld.opcode = Opcode::VLoad;
    ld.ref = AffineRef{farr, 2, 0};
    mem->storeF(farr, 10, 1.0);
    RtVal v = evalOp(ld, {}, 5, 2, *mem);
    EXPECT_DOUBLE_EQ(v.laneF(0), 1.0);
    EXPECT_DOUBLE_EQ(v.laneF(1), 8.0);
}

// -------------------------------------------------------------- engine

const char *kAccum = R"(
array A f64 128
loop accum {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load A[i]
        s1 = fadd s x
    }
    liveout s1
}
)";

TEST(Engine, SequentialAccumulation)
{
    Module m = parseLirOrDie(kAccum);
    Machine mach = paperMachine();
    MemoryImage mem(m.arrays);
    for (int i = 0; i < 8; ++i)
        mem.storeF(0, i, static_cast<double>(i));
    LiveEnv env;
    env["s0"] = RtVal::scalarF(100.0);
    RunOutput out =
        executeLoop(m.arrays, m.loops[0], mach, mem, env, 8);
    EXPECT_DOUBLE_EQ(out.liveOuts.at("s1").laneF(0), 128.0);
    EXPECT_DOUBLE_EQ(out.carriedFinal.at("s").laneF(0), 128.0);
}

TEST(Engine, ZeroIterations)
{
    Module m = parseLirOrDie(kAccum);
    Machine mach = paperMachine();
    MemoryImage mem(m.arrays);
    LiveEnv env;
    env["s0"] = RtVal::scalarF(7.0);
    RunOutput out =
        executeLoop(m.arrays, m.loops[0], mach, mem, env, 0);
    // The continuation state is the init; body live-outs are absent.
    EXPECT_DOUBLE_EQ(out.carriedFinal.at("s").laneF(0), 7.0);
    EXPECT_FALSE(out.liveOuts.count("s1"));
    EXPECT_EQ(out.cycles, 0);
}

TEST(Engine, BaseOffsetsMemoryAccesses)
{
    Module m = parseLirOrDie(kAccum);
    Machine mach = paperMachine();
    MemoryImage mem(m.arrays);
    for (int i = 0; i < 16; ++i)
        mem.storeF(0, i, static_cast<double>(i));
    LiveEnv env;
    env["s0"] = RtVal::scalarF(0.0);
    // Iterations 8..11 (base 8).
    RunOutput out =
        executeLoop(m.arrays, m.loops[0], mach, mem, env, 4, 8);
    EXPECT_DOUBLE_EQ(out.liveOuts.at("s1").laneF(0),
                     8.0 + 9.0 + 10.0 + 11.0);
}

TEST(Engine, UnboundLiveInDies)
{
    Module m = parseLirOrDie(kAccum);
    Machine mach = paperMachine();
    MemoryImage mem(m.arrays);
    EXPECT_DEATH(executeLoop(m.arrays, m.loops[0], mach, mem, {}, 4),
                 "unbound");
}

TEST(Engine, PipelinedMatchesSequentialAndCountsCycles)
{
    Module m = parseLirOrDie(kAccum);
    Machine mach = paperMachine();
    Loop lowered = lowerForScheduling(m.loops[0], mach);
    DepGraph graph(m.arrays, lowered, mach);
    ScheduleResult sr = moduloSchedule(lowered, graph, mach);
    ASSERT_TRUE(sr.ok);

    MemoryImage seq_mem(m.arrays), pipe_mem(m.arrays);
    seq_mem.fillPattern(3);
    pipe_mem.fillPattern(3);
    LiveEnv env;
    env["s0"] = RtVal::scalarF(1.0);

    RunOutput seq =
        executeLoop(m.arrays, lowered, mach, seq_mem, env, 32);
    RunOutput pipe = executeLoop(m.arrays, lowered, mach, pipe_mem,
                                 env, 32, 0, &sr.schedule);

    EXPECT_EQ(seq.liveOuts.at("s1"), pipe.liveOuts.at("s1"));
    EXPECT_EQ(pipe_mem.diff(seq_mem), "");
    // 32 iterations at the recurrence-bound II of 4 plus fill/drain.
    EXPECT_GE(pipe.cycles, 32 * 4);
    EXPECT_LT(pipe.cycles, 32 * 4 + 64);
    EXPECT_EQ(seq.cycles, 0);
}

TEST(Engine, SplatInsBroadcast)
{
    ParseResult pr = parseLir(R"(
array A f64 64
loop t cover 2 {
    livein c f64
    splatin cv c
    body {
        x = vload A[2i]
        y = vfmul x cv
        vstore A[2i + 32] = y
    }
}
)");
    ASSERT_TRUE(pr.ok) << pr.error;
    Machine mach = paperMachine();
    MemoryImage mem(pr.module.arrays);
    mem.storeF(0, 0, 2.0);
    mem.storeF(0, 1, 3.0);
    LiveEnv env;
    env["c"] = RtVal::scalarF(10.0);
    executeLoop(pr.module.arrays, pr.module.loops[0], mach, mem, env,
                1);
    EXPECT_DOUBLE_EQ(mem.loadF(0, 32), 20.0);
    EXPECT_DOUBLE_EQ(mem.loadF(0, 33), 30.0);
}

TEST(Engine, DynamicOpCountsPerClass)
{
    Module m = parseLirOrDie(R"(
array A f64 64
array B f64 64
loop t {
    body {
        x = load A[i]
        y = fmul x x
        store B[i] = y
    }
}
)");
    Machine mach = paperMachine();
    Loop lowered = lowerForScheduling(m.loops[0], mach);
    MemoryImage mem(m.arrays);
    RunOutput out = executeLoop(m.arrays, lowered, mach, mem, {}, 8);
    EXPECT_EQ(out.dynOps[static_cast<size_t>(OpClass::MemLoad)], 8);
    EXPECT_EQ(out.dynOps[static_cast<size_t>(OpClass::MemStore)], 8);
    EXPECT_EQ(out.dynOps[static_cast<size_t>(OpClass::FpMul)], 8);
    EXPECT_EQ(out.dynOps[static_cast<size_t>(OpClass::IntAlu)], 8);
    EXPECT_EQ(out.dynOps[static_cast<size_t>(OpClass::BranchCls)], 8);
    EXPECT_EQ(out.totalDynOps(), 5 * 8);
}

TEST(Engine, SuppressedSpeculativeStoresAreNotCounted)
{
    Module m = parseLirOrDie(R"(
array A f64 64
array B f64 64
loop t {
    livein lim f64
    body {
        x = load A[i]
        store B[i] = x
        c = fcmplt lim x
        exitif c
    }
}
)");
    Machine mach = paperMachine();
    MemoryImage mem(m.arrays);
    for (int i = 0; i < 20; ++i)
        mem.storeF(0, i, i == 5 ? 9.0 : 1.0);
    LiveEnv env;
    env["lim"] = RtVal::scalarF(5.0);
    RunOutput out =
        executeLoop(m.arrays, m.loops[0], mach, mem, env, 20);
    ASSERT_TRUE(out.exited);
    EXPECT_EQ(out.exitOrig, 5);
    // Stores 0..5 committed and counted; later ones suppressed.
    EXPECT_EQ(out.dynOps[static_cast<size_t>(OpClass::MemStore)], 6);
    // Speculative loads still execute (and count).
    EXPECT_EQ(out.dynOps[static_cast<size_t>(OpClass::MemLoad)], 20);
}

} // anonymous namespace
} // namespace selvec
