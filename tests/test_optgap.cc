/**
 * @file
 * The exact-partition oracle contract (DESIGN.md §12): the
 * branch-and-bound search never costs more than the KL incumbent,
 * proves optimality on the shipped kernels, degrades to Unproven
 * (keeping the incumbent) under a node budget, keeps documents
 * byte-identical across jobs and cache states, validates its knobs,
 * and fragments the compile-cache key only when it can matter.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/depgraph.hh"
#include "core/partition.hh"
#include "core/partition_exact.hh"
#include "driver/compilecache.hh"
#include "driver/evaluate.hh"
#include "driver/repro.hh"
#include "driver/reportjson.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "support/json.hh"
#include "workloads/workloads.hh"

namespace selvec
{
namespace
{

std::string
readKernel(const std::string &name)
{
    std::string path = std::string(SELVEC_KERNEL_DIR) + "/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

const std::vector<std::string> &
kernelFiles()
{
    static const std::vector<std::string> kernels = {
        "butterfly.lir", "cmul.lir",   "dot.lir",
        "saxpy.lir",     "search.lir", "stencil5.lir",
    };
    return kernels;
}

struct Analyzed
{
    Module module;
    Machine machine;
    VectAnalysis va;

    Analyzed(const std::string &text, Machine m)
        : machine(std::move(m))
    {
        ParseResult pr = parseLir(text);
        EXPECT_TRUE(pr.ok) << pr.error;
        module = std::move(pr.module);
        DepGraph graph(module.arrays, module.loops[0], machine);
        va = analyzeVectorizable(module.loops[0], graph, machine);
    }

    const Loop &loop() const { return module.loops.front(); }
};

/** A loop with enough vectorizable ops that KL and the oracle have a
 *  real search space. */
const char *kMixed = R"(
array A f64 256
array B f64 256
array C f64 256
loop mixed {
    livein c f64
    body {
        a = load A[i]
        b = load B[i]
        t0 = fmul a b
        t1 = fadd t0 c
        t2 = fmul t1 a
        t3 = fdiv t2 b
        t4 = fadd t3 t1
        store C[i] = t4
    }
}
)";

// ------------------------------------------------------------ strategy

TEST(PartitionStrategy, NamesRoundTrip)
{
    EXPECT_STREQ(partitionStrategyName(PartitionStrategy::Kl), "kl");
    EXPECT_STREQ(partitionStrategyName(PartitionStrategy::Exact),
                 "exact");
    EXPECT_STREQ(partitionStrategyName(PartitionStrategy::Auto),
                 "auto");

    PartitionStrategy s = PartitionStrategy::Kl;
    EXPECT_TRUE(parsePartitionStrategy("exact", &s));
    EXPECT_EQ(s, PartitionStrategy::Exact);
    EXPECT_TRUE(parsePartitionStrategy("auto", &s));
    EXPECT_EQ(s, PartitionStrategy::Auto);
    EXPECT_TRUE(parsePartitionStrategy("kl", &s));
    EXPECT_EQ(s, PartitionStrategy::Kl);

    s = PartitionStrategy::Auto;
    EXPECT_FALSE(parsePartitionStrategy("KL", &s));
    EXPECT_FALSE(parsePartitionStrategy("", &s));
    EXPECT_FALSE(parsePartitionStrategy("exactly", &s));
    EXPECT_EQ(s, PartitionStrategy::Auto) << "out must stay untouched";
}

// ------------------------------------------------------------- kernels

TEST(ExactPartition, NeverWorseThanKlOnKernels)
{
    Machine machine = paperMachine();
    for (const std::string &file : kernelFiles()) {
        Analyzed a(readKernel(file), machine);

        PartitionOptions popt;
        popt.strategy = PartitionStrategy::Kl;
        PartitionResult kl =
            partitionOps(a.loop(), a.va, machine, popt);
        EXPECT_FALSE(kl.exactUsed) << file;

        popt.strategy = PartitionStrategy::Exact;
        PartitionResult exact =
            partitionOps(a.loop(), a.va, machine, popt);
        EXPECT_TRUE(exact.exactUsed) << file;
        EXPECT_TRUE(exact.exactProven) << file;
        EXPECT_EQ(exact.klCost, kl.bestCost) << file;
        EXPECT_LE(exact.bestCost, kl.bestCost) << file;
        EXPECT_EQ(exact.exactGap, kl.bestCost - exact.bestCost)
            << file;
        EXPECT_GE(exact.exactNodes, 0) << file;
    }
}

TEST(ExactPartition, ZeroGapKeepsKlAssignmentBitForBit)
{
    // Determinism contract: when the oracle cannot improve on KL, the
    // partition (and so the whole downstream program) must be the KL
    // one, not some equal-cost sibling.
    Machine machine = paperMachine();
    for (const std::string &file : kernelFiles()) {
        Analyzed a(readKernel(file), machine);

        PartitionOptions popt;
        PartitionResult kl =
            partitionOps(a.loop(), a.va, machine, popt);
        popt.strategy = PartitionStrategy::Exact;
        PartitionResult exact =
            partitionOps(a.loop(), a.va, machine, popt);
        if (exact.exactGap == 0) {
            EXPECT_EQ(exact.vectorize, kl.vectorize) << file;
        }
    }
}

// -------------------------------------------------------------- budget

TEST(ExactPartition, BudgetExhaustionDegradesToUnproven)
{
    Analyzed a(kMixed, paperMachine());

    PartitionOptions popt;
    PartitionResult kl = partitionOps(a.loop(), a.va, a.machine, popt);

    popt.strategy = PartitionStrategy::Exact;
    popt.exactMaxNodes = 1;
    PartitionResult starved =
        partitionOps(a.loop(), a.va, a.machine, popt);
    EXPECT_TRUE(starved.exactUsed);
    EXPECT_FALSE(starved.exactProven);
    // Never wrong, merely incomplete: the KL incumbent survives.
    EXPECT_EQ(starved.bestCost, kl.bestCost);
    EXPECT_EQ(starved.vectorize, kl.vectorize);
    EXPECT_EQ(starved.exactGap, 0);
    EXPECT_FALSE(starved.deadlineStopped)
        << "a budget stop is not a deadline stop";
}

TEST(ExactPartition, UnboundedBudgetProves)
{
    Analyzed a(kMixed, paperMachine());
    PartitionOptions popt;
    popt.strategy = PartitionStrategy::Exact;
    popt.exactMaxNodes = 0;     // 0 = unbounded
    PartitionResult exact =
        partitionOps(a.loop(), a.va, a.machine, popt);
    EXPECT_TRUE(exact.exactProven);
}

// ---------------------------------------------------------------- auto

TEST(ExactPartition, AutoRespectsThreshold)
{
    Analyzed a(kMixed, paperMachine());
    int candidates = 0;
    for (bool b : a.va.vectorizable)
        candidates += b ? 1 : 0;
    ASSERT_GT(candidates, 1);

    PartitionOptions popt;
    popt.strategy = PartitionStrategy::Auto;
    popt.exactThreshold = candidates;
    PartitionResult at =
        partitionOps(a.loop(), a.va, a.machine, popt);
    EXPECT_TRUE(at.exactUsed);

    popt.exactThreshold = candidates - 1;
    PartitionResult over =
        partitionOps(a.loop(), a.va, a.machine, popt);
    EXPECT_FALSE(over.exactUsed);
}

// ---------------------------------------------------------- validation

TEST(ExactPartition, NegativeKnobsAreInvalidInput)
{
    Analyzed a(kMixed, paperMachine());

    PartitionOptions popt;
    popt.exactThreshold = -1;
    Expected<PartitionResult> r =
        tryPartitionOps(a.loop(), a.va, a.machine, popt);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::InvalidInput);

    popt.exactThreshold = 24;
    popt.exactMaxNodes = -5;
    r = tryPartitionOps(a.loop(), a.va, a.machine, popt);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::InvalidInput);

    DriverOptions driver;
    driver.partition.exactMaxNodes = -1;
    ArrayTable arrays = a.module.arrays;
    Expected<CompiledProgram> c = tryCompileLoop(
        a.loop(), arrays, a.machine, Technique::Selective, driver);
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(c.status().code(), ErrorCode::InvalidInput);
}

// ------------------------------------------------------------ cache key

TEST(ExactPartition, CacheKeyFragmentsOnlyWhenItCanMatter)
{
    Analyzed a(kMixed, paperMachine());
    DriverOptions kl_opts;

    DriverOptions exact_opts = kl_opts;
    exact_opts.partition.strategy = PartitionStrategy::Exact;

    std::string kl_key =
        compileCacheKey(a.loop(), a.module.arrays, a.machine,
                        Technique::Selective, kl_opts);
    std::string exact_key =
        compileCacheKey(a.loop(), a.module.arrays, a.machine,
                        Technique::Selective, exact_opts);
    EXPECT_NE(kl_key, exact_key);

    // Under KL the exact knobs cannot change the program: one cache
    // entry must serve every threshold/budget value.
    DriverOptions kl_tweaked = kl_opts;
    kl_tweaked.partition.exactThreshold = 7;
    kl_tweaked.partition.exactMaxNodes = 123;
    EXPECT_EQ(kl_key,
              compileCacheKey(a.loop(), a.module.arrays, a.machine,
                              Technique::Selective, kl_tweaked));

    // Under Exact they can: the key must fragment.
    DriverOptions exact_tweaked = exact_opts;
    exact_tweaked.partition.exactMaxNodes = 1;
    EXPECT_NE(exact_key,
              compileCacheKey(a.loop(), a.module.arrays, a.machine,
                              Technique::Selective, exact_tweaked));
}

// ------------------------------------------------------------ documents

TEST(ExactPartition, ReportsAreIdenticalAcrossJobsAndCacheState)
{
    Suite suite = makeSuite("125.turb3d");
    Machine machine = paperMachine();

    auto render = [&](int jobs, bool cache) {
        compileCacheClear();
        bool was = compileCacheEnabled();
        compileCacheSetEnabled(cache);
        EvaluateOptions options;
        options.jobs = jobs;
        options.driver.partition.strategy = PartitionStrategy::Exact;
        SuiteReport report = evaluateSuite(
            suite, machine, Technique::Selective, options);
        compileCacheSetEnabled(was);
        return jsonOfSuiteReport(report).dump(2);
    };

    std::string serial = render(1, true);
    EXPECT_EQ(serial, render(8, true));
    EXPECT_EQ(serial, render(1, false));
    EXPECT_EQ(serial, render(8, false));
    // The exact detail must actually be in the document.
    EXPECT_NE(serial.find("\"exact\""), std::string::npos);
    EXPECT_NE(serial.find("\"kl_cost\""), std::string::npos);
}

TEST(ExactPartition, KlDocumentsCarryNoExactDetail)
{
    // Byte-identity of default documents with pre-oracle ones: the
    // "exact" object appears only when the oracle ran.
    Suite suite = dotProductSuite();
    Machine machine = paperMachine();
    EvaluateOptions options;
    SuiteReport report =
        evaluateSuite(suite, machine, Technique::Selective, options);
    std::string text = jsonOfSuiteReport(report).dump(2);
    EXPECT_EQ(text.find("\"exact\""), std::string::npos);
}

// ----------------------------------------------------------- round trip

TEST(ExactPartition, ReproBundleRoundTripsStrategyKnobs)
{
    ParseResult pr = parseLir(kMixed);
    ASSERT_TRUE(pr.ok) << pr.error;

    ReproBundle bundle;
    bundle.name = "mixed";
    bundle.module = pr.module;
    bundle.machine = paperMachine();
    bundle.technique = Technique::Selective;
    bundle.tripCount = 8;
    bundle.options.partition.strategy = PartitionStrategy::Auto;
    bundle.options.partition.exactThreshold = 9;
    bundle.options.partition.exactMaxNodes = 4321;
    bundle.failure = Status::error(ErrorCode::Internal, "test", "x");

    Expected<ReproBundle> loaded =
        reproBundleOfJson(jsonOfReproBundle(bundle));
    ASSERT_TRUE(loaded.ok()) << loaded.status().str();
    EXPECT_EQ(loaded.value().options.partition.strategy,
              PartitionStrategy::Auto);
    EXPECT_EQ(loaded.value().options.partition.exactThreshold, 9);
    EXPECT_EQ(loaded.value().options.partition.exactMaxNodes, 4321);
}

// ------------------------------------------------------------- low level

TEST(ExactSearch, EmptyCandidateSetIsTriviallyProven)
{
    // With nothing vectorizable the all-scalar assignment is the
    // whole search space: trivially the proven optimum, no search.
    Analyzed a(kMixed, paperMachine());
    VectAnalysis none = a.va;
    none.vectorizable.assign(none.vectorizable.size(), false);

    PartitionOptions popt;
    popt.strategy = PartitionStrategy::Exact;
    PartitionResult r = partitionOps(a.loop(), none, a.machine, popt);
    EXPECT_TRUE(r.exactUsed);
    EXPECT_TRUE(r.exactProven);
    EXPECT_EQ(r.exactGap, 0);
    EXPECT_EQ(r.klCost, r.bestCost);
    EXPECT_FALSE(r.anyVector());
}

TEST(ExactSearch, DirectSearchMatchesPartitionOps)
{
    Analyzed a(kMixed, paperMachine());
    PartitionResult kl = partitionOps(a.loop(), a.va, a.machine);

    ExactSearchOptions options;
    ExactSearchResult direct = exactPartitionSearch(
        a.loop(), a.va, a.machine, kl.vectorize, kl.bestCost,
        options);
    EXPECT_TRUE(direct.proven);
    EXPECT_LE(direct.bestCost, kl.bestCost);

    PartitionOptions popt;
    popt.strategy = PartitionStrategy::Exact;
    PartitionResult via = partitionOps(a.loop(), a.va, a.machine, popt);
    EXPECT_EQ(via.bestCost, direct.bestCost);
    EXPECT_EQ(via.vectorize, direct.vectorize);
}

} // anonymous namespace
} // namespace selvec
