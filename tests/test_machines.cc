/**
 * @file
 * Tests for the stock machine configurations beyond the paper pair,
 * and cross-machine functional equivalence: a machine description may
 * change every schedule and partition, but never the computed result.
 */

#include <gtest/gtest.h>

#include "driver/driver.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"

namespace selvec
{
namespace
{

TEST(Machines, SweepConfigsValidate)
{
    wideMachine().validate();
    embeddedMachine().validate();
    EXPECT_EQ(wideMachine().unitCount(ResKind::VecUnit), 2);
    EXPECT_EQ(wideMachine().unitCount(ResKind::Slot), 8);
    EXPECT_EQ(embeddedMachine().unitCount(ResKind::FpUnit), 1);
    EXPECT_EQ(embeddedMachine().transfer, TransferModel::DirectMove);
    EXPECT_EQ(embeddedMachine().alignment,
              AlignPolicy::AssumeAligned);
}

TEST(Machines, NamesAreDistinct)
{
    EXPECT_NE(paperMachine().name, wideMachine().name);
    EXPECT_NE(wideMachine().name, embeddedMachine().name);
    EXPECT_NE(directMoveMachine().name, paperMachine().name);
}

const char *kKernel = R"(
array A f64 300
array B f64 300
loop k {
    livein c f64
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        a = load A[i]
        b = load A[i + 1]
        p = fmul a b
        q = fadd p c
        r = fmul q q
        s1 = fadd s r
        store B[i] = r
    }
    liveout s1
}
)";

TEST(Machines, ResultsAreMachineIndependent)
{
    Module m = parseLirOrDie(kKernel);
    LiveEnv env;
    env["c"] = RtVal::scalarF(0.25);
    env["s0"] = RtVal::scalarF(1.0);

    // Reference under any machine (semantics are machine-free).
    MemoryImage ref_mem(m.arrays);
    ref_mem.fillPattern(91);
    ExecResult ref = runReference(m.loops[0], m.arrays,
                                  paperMachine(), ref_mem, env, 97);

    for (const Machine &machine :
         {paperMachine(), directMoveMachine(), wideMachine(),
          embeddedMachine(), toyMachine()}) {
        for (Technique t :
             {Technique::ModuloOnly, Technique::Full,
              Technique::Selective}) {
            ArrayTable arrays = m.arrays;
            CompiledProgram p =
                compileLoop(m.loops[0], arrays, machine, t);
            MemoryImage mem(arrays);
            mem.fillPattern(91);
            ExecResult got =
                runCompiled(p, arrays, machine, mem, env, 97);
            EXPECT_EQ(mem.diff(ref_mem), "")
                << machine.name << " " << techniqueName(t);
            ASSERT_TRUE(got.env.count("s1"));
            EXPECT_EQ(got.env.at("s1"), ref.env.at("s1"))
                << machine.name << " " << techniqueName(t);
        }
    }
}

TEST(Machines, EmbeddedMachineRewardsVectorization)
{
    // One scalar FP unit: offloading arithmetic is the only way to
    // keep the pipeline short.
    Module m = parseLirOrDie(kKernel);
    Machine machine = embeddedMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram base =
        compileLoop(m.loops[0], arrays, machine, Technique::ModuloOnly);
    CompiledProgram sel =
        compileLoop(m.loops[0], arrays, machine, Technique::Selective);
    EXPECT_LT(sel.iiPerIteration(), base.iiPerIteration());
}

} // anonymous namespace
} // namespace selvec
