/**
 * @file
 * Fault-injection tests: the plan machinery itself (site registry,
 * hit-window semantics, plan parsing) and the headline resilience
 * sweep — every injection point forced to fail on every shipped
 * kernel, asserting the driver degrades through the fallback chain in
 * order, never dies, and the degraded program still matches the
 * sequential reference bit-for-bit.
 */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "driver/driver.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "support/faultinject.hh"

namespace selvec
{
namespace
{

FaultPlan
planOf(const std::string &spec)
{
    Expected<FaultPlan> plan = parseFaultPlan(spec);
    EXPECT_TRUE(plan.ok()) << plan.status().str();
    return plan.ok() ? plan.takeValue() : FaultPlan{};
}

TEST(FaultRegistry, KnowsEveryPipelineStage)
{
    const std::vector<std::string> &sites = faultSiteNames();
    EXPECT_EQ(sites.size(), 6u);
    for (const char *site :
         {"partition.kl", "modsched.search", "modsched.stall",
          "lowering.lower", "checker.validate", "sim.watchdog"}) {
        EXPECT_TRUE(faultSiteKnown(site)) << site;
    }
    EXPECT_FALSE(faultSiteKnown("no.such.site"));
}

TEST(FaultPlanParse, Forms)
{
    FaultPlan plan = planOf(
        "partition.kl,modsched.search:3,lowering.lower:*,"
        "checker.validate:2+5");
    ASSERT_EQ(plan.sites.size(), 4u);
    EXPECT_EQ(plan.sites["partition.kl"].skip, 0);
    EXPECT_EQ(plan.sites["partition.kl"].failures, 1);
    EXPECT_EQ(plan.sites["modsched.search"].failures, 3);
    EXPECT_LT(plan.sites["lowering.lower"].failures, 0);
    EXPECT_EQ(plan.sites["checker.validate"].skip, 2);
    EXPECT_EQ(plan.sites["checker.validate"].failures, 5);
}

TEST(FaultPlanParse, RejectsUnknownSiteAndBadCounts)
{
    for (const char *spec :
         {"no.such.site", "partition.kl:x", "partition.kl:1+",
          "modsched.search:", "partition.kl:-2"}) {
        Expected<FaultPlan> plan = parseFaultPlan(spec);
        EXPECT_FALSE(plan.ok()) << spec;
        if (!plan.ok()) {
            EXPECT_EQ(plan.status().code(), ErrorCode::InvalidInput)
                << spec;
        }
    }
}

TEST(FaultPoint, UnarmedSitesAreFree)
{
    clearFaultPlan();
    EXPECT_FALSE(faultPointHit("partition.kl"));
    EXPECT_FALSE(faultPointHit("modsched.search"));
}

TEST(FaultPoint, SkipAndFailureWindow)
{
    ScopedFaultPlan plan(planOf("modsched.search:1+2"));
    EXPECT_FALSE(faultPointHit("modsched.search"));   // skipped
    EXPECT_TRUE(faultPointHit("modsched.search"));    // failure 1
    EXPECT_TRUE(faultPointHit("modsched.search"));    // failure 2
    EXPECT_FALSE(faultPointHit("modsched.search"));   // window spent
    EXPECT_FALSE(faultPointHit("partition.kl"));      // unarmed site
    EXPECT_EQ(faultHits("modsched.search"), 4);
    EXPECT_EQ(faultHits("partition.kl"), 1);
}

TEST(FaultPoint, ScopedPlanUninstalls)
{
    {
        ScopedFaultPlan plan(planOf("partition.kl:*"));
        EXPECT_TRUE(faultPointHit("partition.kl"));
    }
    EXPECT_FALSE(faultPointHit("partition.kl"));
    EXPECT_EQ(faultHits("partition.kl"), 0);   // counts were reset
}

// ---------------------------------------------------------------------
// The resilience sweep.

std::string
readKernel(const std::string &name)
{
    std::string path = std::string(SELVEC_KERNEL_DIR) + "/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

const std::vector<std::string> &
kernelFiles()
{
    static const std::vector<std::string> kernels = {
        "butterfly.lir", "cmul.lir",   "dot.lir",
        "saxpy.lir",     "search.lir", "stencil5.lir",
    };
    return kernels;
}

/** Bind every named live-in of `loop` to a deterministic value. */
LiveEnv
bindLiveIns(const Loop &loop)
{
    LiveEnv env;
    int idx = 0;
    for (ValueId id : loop.liveIns) {
        const ValueInfo &info = loop.valueInfo(id);
        if (info.name.rfind("__", 0) == 0)
            continue;
        if (info.type == Type::I64) {
            env[info.name] = RtVal::scalarI(3 + idx);
        } else {
            env[info.name] = RtVal::scalarF(1.5 + 0.25 * idx);
        }
        ++idx;
    }
    return env;
}

ErrorCode
expectedCode(const std::string &site)
{
    if (site == "partition.kl")
        return ErrorCode::PartitionFailed;
    if (site == "modsched.search")
        return ErrorCode::ScheduleBudgetExhausted;
    // modsched.stall: without an armed deadline the hang site fails
    // instantly as an exhausted II search, keeping sweeps fast (the
    // contained-hang form is exercised by the containment tests).
    if (site == "modsched.stall")
        return ErrorCode::ScheduleBudgetExhausted;
    if (site == "lowering.lower")
        return ErrorCode::Internal;
    return ErrorCode::VerifyFailed;   // checker.validate
}

/**
 * The sweep covers the compile-path sites. sim.watchdog lives in the
 * simulator's bounded-run path — a compile never polls it — and is
 * exercised by the containment tests instead.
 */
std::vector<std::string>
compileTimeSites()
{
    std::vector<std::string> sites;
    for (const std::string &site : faultSiteNames())
        if (site != "sim.watchdog")
            sites.push_back(site);
    return sites;
}

class FaultSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

/**
 * Fail the first hit of one injection point while compiling one
 * kernel with the Selective technique: the first tier must fail with
 * that site's error code, a later tier must succeed, and the degraded
 * program must still match the reference bit-for-bit.
 */
TEST_P(FaultSweep, DegradesAndStaysBitExact)
{
    auto [site, kernel] = GetParam();
    Module module = parseLirOrDie(readKernel(kernel));
    Machine machine = paperMachine();
    const Loop &loop = module.loops.front();
    LiveEnv env = bindLiveIns(loop);
    const int64_t n = 67;   // odd, so cleanup loops run too

    ArrayTable arrays = module.arrays;
    ResilientCompile rc = [&] {
        ScopedFaultPlan plan(planOf(site + ":1"));
        return compileLoopResilient(loop, arrays, machine,
                                    Technique::Selective);
    }();

    // (a) the process is alive; (b) the chain engaged in order: the
    // requested tier absorbed the injected failure, the next succeeded.
    ASSERT_TRUE(rc.ok()) << rc.report.str();
    ASSERT_GE(rc.report.attempts.size(), 2u) << rc.report.str();
    const CompileAttempt &first = rc.report.attempts.front();
    EXPECT_EQ(first.technique, Technique::Selective);
    EXPECT_FALSE(first.status.ok());
    EXPECT_EQ(first.status.code(), expectedCode(site))
        << first.status.str();
    EXPECT_NE(first.status.message().find(site), std::string::npos)
        << first.status.str();
    const CompileAttempt &last = rc.report.attempts.back();
    EXPECT_TRUE(last.status.ok());
    EXPECT_EQ(last.fallbackReason, first.status.str());
    EXPECT_TRUE(rc.report.degraded());
    EXPECT_EQ(rc.report.finalTechnique, Technique::Full);
    EXPECT_FALSE(rc.report.usedScalarFallback);

    // (c) the degraded program is still correct, bit for bit.
    MemoryImage ref_mem(arrays);
    ref_mem.fillPattern(7);
    Expected<ExecResult> ref = tryRunReference(loop, arrays, machine,
                                               ref_mem, env, n);
    ASSERT_TRUE(ref.ok()) << ref.status().str();

    MemoryImage mem(arrays);
    mem.fillPattern(7);
    Expected<ExecResult> got = tryRunCompiled(
        rc.program, arrays, machine, mem, env, n);
    ASSERT_TRUE(got.ok()) << got.status().str();

    EXPECT_EQ(mem.diff(ref_mem), "");
    for (ValueId v : loop.liveOuts) {
        const std::string &name = loop.valueInfo(v).name;
        if (!ref.value().env.count(name))
            continue;
        ASSERT_TRUE(got.value().env.count(name)) << name;
        EXPECT_EQ(got.value().env.at(name), ref.value().env.at(name))
            << name << ": got " << got.value().env.at(name).str()
            << " want " << ref.value().env.at(name).str();
    }
}

std::string
sweepName(const ::testing::TestParamInfo<
          std::tuple<std::string, std::string>> &info)
{
    std::string name =
        std::get<0>(info.param) + "_" + std::get<1>(info.param);
    for (char &c : name) {
        if (c == '.' || c == '-')
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSitesAllKernels, FaultSweep,
    ::testing::Combine(::testing::ValuesIn(compileTimeSites()),
                       ::testing::ValuesIn(kernelFiles())),
    sweepName);

/** A failure that persists across tiers walks the whole chain:
 *  Selective, Full, ModuloOnly, then the scalar last resort. */
TEST(FaultChain, WalksEveryTierInOrder)
{
    Module module = parseLirOrDie(readKernel("dot.lir"));
    ArrayTable arrays = module.arrays;

    ScopedFaultPlan plan(planOf("modsched.search:3"));
    ResilientCompile rc =
        compileLoopResilient(module.loops.front(), arrays,
                             paperMachine(), Technique::Selective);

    ASSERT_TRUE(rc.ok()) << rc.report.str();
    ASSERT_EQ(rc.report.attempts.size(), 4u);
    EXPECT_EQ(rc.report.attempts[0].technique, Technique::Selective);
    EXPECT_EQ(rc.report.attempts[1].technique, Technique::Full);
    EXPECT_EQ(rc.report.attempts[2].technique, Technique::ModuloOnly);
    EXPECT_FALSE(rc.report.attempts[2].scalarFallback);
    EXPECT_TRUE(rc.report.attempts[3].scalarFallback);
    EXPECT_TRUE(rc.report.attempts[3].status.ok());
    EXPECT_TRUE(rc.report.usedScalarFallback);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(rc.report.attempts[static_cast<size_t>(i)]
                      .status.code(),
                  ErrorCode::ScheduleBudgetExhausted);
    }
    for (size_t i = 1; i < 4; ++i) {
        EXPECT_EQ(rc.report.attempts[i].fallbackReason,
                  rc.report.attempts[i - 1].status.str());
    }
}

/** When every tier fails, the driver still does not die: the report
 *  carries the last failure and ok() is false. */
TEST(FaultChain, TotalFailureIsReportedNotFatal)
{
    Module module = parseLirOrDie(readKernel("saxpy.lir"));
    ArrayTable arrays = module.arrays;

    ScopedFaultPlan plan(planOf("modsched.search:*"));
    ResilientCompile rc =
        compileLoopResilient(module.loops.front(), arrays,
                             paperMachine(), Technique::Selective);

    EXPECT_FALSE(rc.ok());
    ASSERT_EQ(rc.report.attempts.size(), 4u);
    for (const CompileAttempt &a : rc.report.attempts)
        EXPECT_FALSE(a.status.ok());
    EXPECT_FALSE(rc.report.finalStatus.ok());
    EXPECT_EQ(rc.report.finalStatus.code(),
              ErrorCode::ScheduleBudgetExhausted);
    EXPECT_TRUE(rc.report.degraded());
    // The report renders every tier for logs.
    std::string rendered = rc.report.str();
    EXPECT_NE(rendered.find("selective"), std::string::npos);
    EXPECT_NE(rendered.find("scalar"), std::string::npos);
    EXPECT_NE(rendered.find("all tiers failed"), std::string::npos);
}

/** An undisturbed resilient compile uses the requested technique and
 *  reports a single successful attempt. */
TEST(FaultChain, NoFaultMeansNoDegradation)
{
    Module module = parseLirOrDie(readKernel("dot.lir"));
    ArrayTable arrays = module.arrays;
    ResilientCompile rc =
        compileLoopResilient(module.loops.front(), arrays,
                             paperMachine(), Technique::Selective);
    ASSERT_TRUE(rc.ok());
    EXPECT_FALSE(rc.report.degraded());
    ASSERT_EQ(rc.report.attempts.size(), 1u);
    EXPECT_TRUE(rc.report.attempts[0].status.ok());
    EXPECT_GT(rc.report.attempts[0].iiPerIteration, 0.0);
}

} // anonymous namespace
} // namespace selvec
