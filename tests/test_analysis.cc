/**
 * @file
 * Unit tests for dependence graph construction, SCCs, vectorizability
 * marking and RecMII.
 */

#include <gtest/gtest.h>

#include "analysis/depgraph.hh"
#include "analysis/recmii.hh"
#include "analysis/scc.hh"
#include "analysis/vectorizable.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"

namespace selvec
{
namespace
{

Module
parse(const char *text)
{
    ParseResult pr = parseLir(text);
    EXPECT_TRUE(pr.ok) << pr.error;
    return std::move(pr.module);
}

const char *kDot = R"(
array X f64 256
array Y f64 256
loop dot {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        y = load Y[i]
        t = fmul x y
        s1 = fadd s t
    }
    liveout s1
}
)";

// ------------------------------------------------------------ depgraph

TEST(DepGraphTest, DotProductEdges)
{
    Module m = parse(kDot);
    Machine mach = paperMachine();
    DepGraph g(m.arrays, m.loops[0], mach);

    // Flow: x->t, y->t, t->s1, plus carried s1->s1 (distance 1).
    int reg_flow = 0, carried = 0, mem = 0;
    for (const DepEdge &e : g.edges()) {
        switch (e.kind) {
          case DepKind::RegFlow:    ++reg_flow; break;
          case DepKind::RegCarried: ++carried; break;
          case DepKind::Mem:        ++mem; break;
        }
    }
    EXPECT_EQ(reg_flow, 3);
    EXPECT_EQ(carried, 1);
    EXPECT_EQ(mem, 0);

    // The carried edge is the self edge on the add with distance 1
    // and FP-add latency.
    for (const DepEdge &e : g.edges()) {
        if (e.kind == DepKind::RegCarried) {
            EXPECT_EQ(e.src, 3);
            EXPECT_EQ(e.dst, 3);
            EXPECT_EQ(e.distance, 1);
            EXPECT_EQ(e.latency, mach.latency(Opcode::FAdd));
        }
    }
}

TEST(DepGraphTest, MemoryFlowAndAnti)
{
    // load a[i]; store a[i]; load a[i+1] (reads next iteration's
    // stored element one iteration early - anti dependence).
    Module m = parse(R"(
array A f64 256
loop t {
    body {
        x = load A[i]
        y = load A[i + 1]
        s = fadd x y
        store A[i] = s
    }
}
)");
    Machine mach = paperMachine();
    DepGraph g(m.arrays, m.loops[0], mach);

    bool load0_store = false;    // same-iteration anti, distance 0
    bool load1_store = false;    // cross-iteration anti, distance 1
    bool store_load = false;     // flow back, should NOT exist forward
    for (const DepEdge &e : g.edges()) {
        if (e.kind != DepKind::Mem)
            continue;
        if (e.src == 0 && e.dst == 3 && e.distance == 0)
            load0_store = true;
        if (e.src == 1 && e.dst == 3 && e.distance == 1)
            load1_store = true;
        if (e.src == 3 && e.dst == 0)
            store_load = true;
    }
    EXPECT_TRUE(load0_store);
    EXPECT_TRUE(load1_store);
    EXPECT_FALSE(store_load);
}

TEST(DepGraphTest, UnknownDepsSerialize)
{
    Module m = parse(R"(
array A f64 1024
loop t {
    body {
        x = load A[i]
        y = fneg x
        store A[2i] = y
    }
}
)");
    Machine mach = paperMachine();
    DepGraph g(m.arrays, m.loops[0], mach);
    EXPECT_TRUE(g.hasUnknownMemDeps());
}

TEST(DepGraphTest, DistinctArraysNeverAlias)
{
    Module m = parse(R"(
array A f64 256
array B f64 256
loop t {
    body {
        x = load A[i]
        store B[i] = x
    }
}
)");
    Machine mach = paperMachine();
    DepGraph g(m.arrays, m.loops[0], mach);
    for (const DepEdge &e : g.edges())
        EXPECT_NE(e.kind, DepKind::Mem);
}

// ----------------------------------------------------------------- scc

TEST(Scc, ChainHasSingletons)
{
    SccInfo info = computeSccs(3, {{0, 1}, {1, 2}});
    EXPECT_EQ(info.numSccs(), 3);
    for (bool c : info.cyclic)
        EXPECT_FALSE(c);
    // Topological: 0's component before 1's before 2's.
    EXPECT_EQ(info.topoOrder.size(), 3u);
    std::vector<int> pos(3);
    for (int i = 0; i < 3; ++i)
        pos[static_cast<size_t>(info.topoOrder[static_cast<size_t>(
            i)])] = i;
    EXPECT_LT(pos[static_cast<size_t>(info.sccOf[0])],
              pos[static_cast<size_t>(info.sccOf[1])]);
    EXPECT_LT(pos[static_cast<size_t>(info.sccOf[1])],
              pos[static_cast<size_t>(info.sccOf[2])]);
}

TEST(Scc, CycleCollapses)
{
    SccInfo info = computeSccs(4, {{0, 1}, {1, 2}, {2, 1}, {2, 3}});
    EXPECT_EQ(info.numSccs(), 3);
    EXPECT_EQ(info.sccOf[1], info.sccOf[2]);
    EXPECT_TRUE(info.cyclic[static_cast<size_t>(info.sccOf[1])]);
    EXPECT_FALSE(info.cyclic[static_cast<size_t>(info.sccOf[0])]);
}

TEST(Scc, SelfEdgeIsCyclic)
{
    SccInfo info = computeSccs(2, {{0, 0}, {0, 1}});
    EXPECT_TRUE(info.cyclic[static_cast<size_t>(info.sccOf[0])]);
    EXPECT_FALSE(info.cyclic[static_cast<size_t>(info.sccOf[1])]);
}

TEST(Scc, EmptyGraph)
{
    SccInfo info = computeSccs(0, {});
    EXPECT_EQ(info.numSccs(), 0);
}

// -------------------------------------------------------- vectorizable

TEST(Vectorizable, DotProductMarks)
{
    Module m = parse(kDot);
    Machine mach = paperMachine();
    DepGraph g(m.arrays, m.loops[0], mach);
    VectAnalysis va = analyzeVectorizable(m.loops[0], g, mach);
    EXPECT_TRUE(va.vectorizable[0]);    // load x
    EXPECT_TRUE(va.vectorizable[1]);    // load y
    EXPECT_TRUE(va.vectorizable[2]);    // fmul
    EXPECT_FALSE(va.vectorizable[3]);   // reduction add
    EXPECT_TRUE(va.anyVectorizable);
    EXPECT_EQ(va.countVectorizable(), 3);
}

TEST(Vectorizable, StridedMemoryStaysScalar)
{
    Module m = parse(R"(
array A f64 1024
array B f64 1024
loop t {
    body {
        x = load A[2i]
        y = fneg x
        store B[i] = y
    }
}
)");
    Machine mach = paperMachine();
    DepGraph g(m.arrays, m.loops[0], mach);
    VectAnalysis va = analyzeVectorizable(m.loops[0], g, mach);
    EXPECT_FALSE(va.vectorizable[0]);   // strided load
    EXPECT_TRUE(va.vectorizable[1]);    // compute
    EXPECT_TRUE(va.vectorizable[2]);    // unit-stride store
}

TEST(Vectorizable, DistanceAtLeastVlCycleAllowed)
{
    // a[i+4] = f(a[i]): carried memory cycle at distance 4 >= VL=2,
    // the paper's explicit example of a vectorizable recurrence. With
    // hardware-supported (aligned) vector memory everything
    // vectorizes; under the misaligned policy the store's deferred
    // partial chunks sit too close to the dependent load and the
    // store conservatively stays scalar.
    Module m = parse(R"(
array A f64 256
loop t {
    body {
        x = load A[i]
        y = fneg x
        store A[i + 4] = y
    }
}
)");
    Machine aligned = paperMachine();
    aligned.alignment = AlignPolicy::AssumeAligned;
    DepGraph g(m.arrays, m.loops[0], aligned);
    VectAnalysis va = analyzeVectorizable(m.loops[0], g, aligned);
    EXPECT_TRUE(va.vectorizable[0]);
    EXPECT_TRUE(va.vectorizable[1]);
    EXPECT_TRUE(va.vectorizable[2]);

    int scc = va.sccs.sccOf[0];
    EXPECT_TRUE(va.sccs.cyclic[static_cast<size_t>(scc)]);
    EXPECT_EQ(va.minCycleDistance[static_cast<size_t>(scc)], 4);

    Machine mis = paperMachine();
    VectAnalysis vm = analyzeVectorizable(m.loops[0], g, mis);
    EXPECT_TRUE(vm.vectorizable[0]);
    EXPECT_TRUE(vm.vectorizable[1]);
    EXPECT_FALSE(vm.vectorizable[2]);
    EXPECT_TRUE(vm.memEntangled[2]);
}

TEST(Vectorizable, DistanceOneCycleForbidden)
{
    Module m = parse(R"(
array A f64 256
loop t {
    body {
        x = load A[i]
        y = fneg x
        store A[i + 1] = y
    }
}
)");
    Machine mach = paperMachine();
    DepGraph g(m.arrays, m.loops[0], mach);
    VectAnalysis va = analyzeVectorizable(m.loops[0], g, mach);
    EXPECT_FALSE(va.vectorizable[0]);
    EXPECT_FALSE(va.vectorizable[1]);
    EXPECT_FALSE(va.vectorizable[2]);
}

TEST(Vectorizable, NeighborGuardDropsIsolatedOps)
{
    // The strided load's consumer chain is scalar; a lone
    // vectorizable store of a live-in has no vectorizable dataflow
    // neighbor and is dropped by the guard.
    Module m = parse(R"(
array A f64 1024
array B f64 1024
loop t {
    livein c f64
    body {
        x = load A[2i]
        y = fneg x
        store A[2i + 1] = y
        store B[i] = c
    }
}
)");
    Machine mach = paperMachine();
    DepGraph g(m.arrays, m.loops[0], mach);

    VectOptions guard;
    guard.neighborGuard = true;
    VectAnalysis va = analyzeVectorizable(m.loops[0], g, mach, guard);
    // fneg's only neighbors are the strided (scalar) accesses.
    EXPECT_FALSE(va.vectorizable[1]);
    // The isolated unit-stride store is dropped too.
    EXPECT_FALSE(va.vectorizable[3]);

    VectAnalysis no_guard = analyzeVectorizable(m.loops[0], g, mach);
    EXPECT_TRUE(no_guard.vectorizable[1]);
    EXPECT_TRUE(no_guard.vectorizable[3]);
}

TEST(Vectorizable, ReductionRecognitionOptIn)
{
    Module m = parse(kDot);
    Machine mach = paperMachine();
    DepGraph g(m.arrays, m.loops[0], mach);

    VectOptions opts;
    opts.recognizeReductions = true;
    VectAnalysis va = analyzeVectorizable(m.loops[0], g, mach, opts);
    EXPECT_TRUE(va.vectorizable[3]);
    EXPECT_TRUE(va.reduction[3]);

    VectAnalysis off = analyzeVectorizable(m.loops[0], g, mach);
    EXPECT_FALSE(off.vectorizable[3]);
}

// -------------------------------------------------------------- recmii

TEST(RecMii, AcyclicIsOne)
{
    Module m = parse(R"(
array A f64 256
array B f64 256
loop t {
    body {
        x = load A[i]
        y = fmul x x
        store B[i] = y
    }
}
)");
    Machine mach = paperMachine();
    DepGraph g(m.arrays, m.loops[0], mach);
    EXPECT_EQ(computeRecMii(g), 1);
}

TEST(RecMii, ReductionChainLatency)
{
    Module m = parse(kDot);
    Machine mach = paperMachine();
    DepGraph g(m.arrays, m.loops[0], mach);
    // One FP add (latency 4) around a distance-1 cycle.
    EXPECT_EQ(computeRecMii(g), 4);
}

TEST(RecMii, LongDistanceDividesLatency)
{
    Module m = parse(R"(
array A f64 256
loop t {
    body {
        x = load A[i]
        y = fneg x
        store A[i + 4] = y
    }
}
)");
    Machine mach = paperMachine();
    DepGraph g(m.arrays, m.loops[0], mach);
    // Cycle latency: load 3 + fneg 4 + store edge 1 = 8 over
    // distance 4 -> ceil(8/4) = 2.
    EXPECT_EQ(computeRecMii(g), 2);
}

TEST(RecMii, AdmitsMonotone)
{
    Module m = parse(kDot);
    Machine mach = paperMachine();
    DepGraph g(m.arrays, m.loops[0], mach);
    int64_t rec = computeRecMii(g);
    EXPECT_FALSE(recurrencesAdmit(g, rec - 1));
    EXPECT_TRUE(recurrencesAdmit(g, rec));
    EXPECT_TRUE(recurrencesAdmit(g, rec + 5));
}

} // anonymous namespace
} // namespace selvec
