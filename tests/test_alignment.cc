/**
 * @file
 * Tests for the misalignment machinery: phase computation, the
 * previous-iteration reuse scheme, the two-load fallback for
 * dependence-entangled streams, partial-chunk priming and draining,
 * and the cost-model consequences (Table 5's mechanism).
 */

#include <gtest/gtest.h>

#include "analysis/depgraph.hh"
#include "core/transform.hh"
#include "driver/driver.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "support/logging.hh"

namespace selvec
{
namespace
{

struct Ctx
{
    Module module;
    Machine machine;
    VectAnalysis va;

    Ctx(const std::string &text, Machine m) : machine(std::move(m))
    {
        ParseResult pr = parseLir(text);
        EXPECT_TRUE(pr.ok) << pr.error;
        module = std::move(pr.module);
        DepGraph graph(module.arrays, module.loops[0], machine);
        va = analyzeVectorizable(module.loops[0], graph, machine);
    }

    const Loop &loop() const { return module.loops.front(); }

    Loop
    vectorizeAll()
    {
        return transformLoop(loop(), module.arrays, va,
                             va.vectorizable, machine);
    }
};

TEST(Alignment, EvenPhaseStillPaysMergeUnderMisalignedPolicy)
{
    // The paper assumes no alignment information: even a phase-0
    // reference compiles with the merge (and it must stay correct).
    Ctx c(R"(
array A f64 300
array B f64 300
loop t {
    body {
        x = load A[i + 4]
        y = fneg x
        store B[i + 2] = y
    }
}
)",
          paperMachine());
    Loop vec = c.vectorizeAll();
    int merges = 0;
    for (const Operation &op : vec.ops)
        merges += op.opcode == Opcode::VMerge;
    EXPECT_EQ(merges, 2);

    MemoryImage ref(c.module.arrays), got(c.module.arrays);
    ref.fillPattern(31);
    got.fillPattern(31);
    executeLoop(c.module.arrays, c.loop(), c.machine, ref, {}, 64);
    executeLoop(c.module.arrays, vec, c.machine, got, {}, 32);
    EXPECT_EQ(got.diff(ref), "");
}

TEST(Alignment, OddStorePhaseDrainsThroughPoststores)
{
    Ctx c(R"(
array A f64 300
array B f64 300
loop t {
    body {
        x = load A[i]
        y = fneg x
        store B[i + 3] = y
    }
}
)",
          paperMachine());
    Loop vec = c.vectorizeAll();
    // phi = 1 for VL 2: one poststore drains the final element.
    EXPECT_EQ(vec.poststores.size(), 1u);
    EXPECT_FALSE(vec.preloads.empty());

    MemoryImage ref(c.module.arrays), got(c.module.arrays);
    ref.fillPattern(33);
    got.fillPattern(33);
    executeLoop(c.module.arrays, c.loop(), c.machine, ref, {}, 64);
    executeLoop(c.module.arrays, vec, c.machine, got, {}, 32);
    EXPECT_EQ(got.diff(ref), "");
}

TEST(Alignment, StorePrefixPreservesUntouchedElements)
{
    // The misaligned store's first chunk writes back preloaded
    // original values below the store range; they must be preserved
    // exactly (diff() compares the whole array).
    Ctx c(R"(
array A f64 300
array B f64 300
loop t {
    livein s f64
    body {
        x = load A[i]
        y = fmul x s
        store B[i + 7] = y
    }
}
)",
          paperMachine());
    Loop vec = c.vectorizeAll();
    LiveEnv env;
    env["s"] = RtVal::scalarF(3.0);
    MemoryImage ref(c.module.arrays), got(c.module.arrays);
    ref.fillPattern(35);
    got.fillPattern(35);
    executeLoop(c.module.arrays, c.loop(), c.machine, ref, env, 50);
    executeLoop(c.module.arrays, vec, c.machine, got, env, 25);
    EXPECT_EQ(got.diff(ref), "");
}

TEST(Alignment, EntangledLoadUsesTwoLoadFallback)
{
    // A store writes what a later iteration loads (flow distance 0
    // through program order store->load): the reuse chunk would be
    // stale, so the load compiles as two aligned loads + merge with
    // no carried state.
    Ctx c(R"(
array A f64 300
loop t {
    livein cc f64
    body {
        store A[i + 4] = cc
        x = load A[i + 4]
        y = fneg x
        store A[i + 9] = y
    }
}
)",
          paperMachine());
    ASSERT_TRUE(c.va.memEntangled[1]);   // the load
    Loop vec = c.vectorizeAll();

    LiveEnv env;
    env["cc"] = RtVal::scalarF(1.25);
    MemoryImage ref(c.module.arrays), got(c.module.arrays);
    ref.fillPattern(37);
    got.fillPattern(37);
    executeLoop(c.module.arrays, c.loop(), c.machine, ref, env, 64);
    executeLoop(c.module.arrays, vec, c.machine, got, env, 32);
    EXPECT_EQ(got.diff(ref), "");
}

TEST(Alignment, EntangledStoreStaysScalar)
{
    // A store whose deferred chunks would reorder against a
    // dependent load (store->load flow at distance 1) must not be
    // compiled misaligned: the analysis keeps it scalar.
    Ctx c(R"(
array A f64 300
loop t {
    livein cc f64
    body {
        x = load A[i + 6]
        y = fmul x cc
        store A[i + 7] = y
    }
}
)",
          paperMachine());
    // The memory cycle at distance 1 already blocks vectorization of
    // the whole chain here; check the flag machinery directly on a
    // clean distance >= VL variant instead.
    Ctx d(R"(
array A f64 300
loop t {
    livein cc f64
    body {
        x = load A[i]
        y = fmul x cc
        store A[i + 5] = y
    }
}
)",
          paperMachine());
    // Distance 5 >= VL: vectorizable as a cycle, but the store's
    // deferred writes sit within 2*VL of the dependent load, so the
    // misaligned store is refused while the load falls back to two
    // aligned loads.
    EXPECT_TRUE(d.va.vectorizable[0]);
    EXPECT_FALSE(d.va.vectorizable[2]);

    Loop vec = d.vectorizeAll();
    LiveEnv env;
    env["cc"] = RtVal::scalarF(0.5);
    MemoryImage ref(d.module.arrays), got(d.module.arrays);
    ref.fillPattern(39);
    got.fillPattern(39);
    executeLoop(d.module.arrays, d.loop(), d.machine, ref, env, 64);
    executeLoop(d.module.arrays, vec, d.machine, got, env, 32);
    EXPECT_EQ(got.diff(ref), "");
}

TEST(Alignment, AlignedPolicySkipsAllMachinery)
{
    Machine aligned = paperMachine();
    aligned.alignment = AlignPolicy::AssumeAligned;
    Ctx c(R"(
array A f64 300
array B f64 300
loop t {
    body {
        x = load A[i + 3]
        y = fneg x
        store B[i + 5] = y
    }
}
)",
          aligned);
    Loop vec = c.vectorizeAll();
    for (const Operation &op : vec.ops)
        EXPECT_NE(op.opcode, Opcode::VMerge);
    EXPECT_TRUE(vec.preloads.empty());
    EXPECT_TRUE(vec.poststores.empty());

    MemoryImage ref(c.module.arrays), got(c.module.arrays);
    ref.fillPattern(41);
    got.fillPattern(41);
    executeLoop(c.module.arrays, c.loop(), aligned, ref, {}, 64);
    executeLoop(c.module.arrays, vec, aligned, got, {}, 32);
    EXPECT_EQ(got.diff(ref), "");
}

TEST(Alignment, DriverEndToEndOddTripCounts)
{
    // Misaligned loads + stores + cleanup loop over awkward trips.
    Module m = parseLirOrDie(R"(
array A f64 300
array B f64 300
loop t {
    livein w f64
    body {
        a = load A[i + 1]
        b = load A[i + 2]
        s = fadd a b
        sw = fmul s w
        store B[i + 3] = sw
    }
}
)");
    Machine machine = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, machine, Technique::Full);
    LiveEnv env;
    env["w"] = RtVal::scalarF(0.5);
    for (int64_t n : {1, 2, 3, 17, 64, 99}) {
        MemoryImage mem(arrays), ref(arrays);
        mem.fillPattern(43);
        ref.fillPattern(43);
        runCompiled(p, arrays, machine, mem, env, n);
        runReference(m.loops[0], arrays, machine, ref, env, n);
        EXPECT_EQ(mem.diff(ref), "") << "n=" << n;
    }
}

TEST(Alignment, Table5MechanismAlignedCostsLess)
{
    // The partitioner's vector-memory bags shrink under perfect
    // alignment, which is all Table 5 measures.
    Module m = parseLirOrDie(R"(
array A f64 300
array B f64 300
loop t {
    body {
        x = load A[i]
        y = fneg x
        store B[i] = y
    }
}
)");
    Machine mis = paperMachine();
    Machine ali = paperMachine();
    ali.alignment = AlignPolicy::AssumeAligned;

    DepGraph g1(m.arrays, m.loops[0], mis);
    VectAnalysis va1 = analyzeVectorizable(m.loops[0], g1, mis);
    PartitionCostModel pm1(m.loops[0], va1, mis);
    DepGraph g2(m.arrays, m.loops[0], ali);
    VectAnalysis va2 = analyzeVectorizable(m.loops[0], g2, ali);
    PartitionCostModel pm2(m.loops[0], va2, ali);

    EXPECT_GT(pm1.opcodesFor(0, true).size(),
              pm2.opcodesFor(0, true).size());
}

class WideVectors
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(WideVectors, MisalignedEquivalenceAtAnyVectorLength)
{
    int vl = std::get<0>(GetParam());
    int offset = std::get<1>(GetParam());
    Machine machine = paperMachine();
    machine.vectorLength = vl;

    std::string text = strfmt(R"(
array X f64 600
array Y f64 600
loop t {
    livein a f64
    body {
        x = load X[i + %d]
        y = load X[i + %d]
        s = fadd x y
        ax = fmul a s
        store Y[i + %d] = ax
    }
}
)",
                              offset, offset + 1, offset + 2);
    Ctx c(text, machine);
    Loop vec = transformLoop(c.loop(), c.module.arrays, c.va,
                             c.va.vectorizable, machine);
    EXPECT_EQ(vec.coverage, vl);

    LiveEnv env;
    env["a"] = RtVal::scalarF(1.5);
    MemoryImage ref(c.module.arrays), got(c.module.arrays);
    ref.fillPattern(95);
    got.fillPattern(95);
    executeLoop(c.module.arrays, c.loop(), machine, ref, env, 96);
    executeLoop(c.module.arrays, vec, machine, got, env, 96 / vl);
    EXPECT_EQ(got.diff(ref), "");
}

INSTANTIATE_TEST_SUITE_P(
    Phases, WideVectors,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(1, 2, 3, 5, 7, 8)),
    [](const auto &info) {
        return "vl" + std::to_string(std::get<0>(info.param)) +
               "_off" + std::to_string(std::get<1>(info.param));
    });

} // anonymous namespace
} // namespace selvec
