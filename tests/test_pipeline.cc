/**
 * @file
 * Unit tests for lowering, iterative modulo scheduling, the schedule
 * checker and the schedule printer.
 */

#include <gtest/gtest.h>

#include "analysis/depgraph.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "pipeline/checker.hh"
#include "pipeline/lowering.hh"
#include "pipeline/modsched.hh"
#include "pipeline/printer.hh"

namespace selvec
{
namespace
{

Module
parse(const char *text)
{
    ParseResult pr = parseLir(text);
    EXPECT_TRUE(pr.ok) << pr.error;
    return std::move(pr.module);
}

struct Scheduled
{
    Module module;
    Loop lowered;
    ScheduleResult result;
};

Scheduled
scheduleText(const char *text, const Machine &machine)
{
    Scheduled s;
    s.module = parse(text);
    s.lowered = lowerForScheduling(s.module.loops[0], machine);
    DepGraph graph(s.module.arrays, s.lowered, machine);
    s.result = moduloSchedule(s.lowered, graph, machine);
    EXPECT_TRUE(s.result.ok) << s.result.error;
    EXPECT_EQ(validateSchedule(s.lowered, graph, machine,
                               s.result.schedule),
              "");
    return s;
}

const char *kCopy = R"(
array A f64 256
array B f64 256
loop copy {
    body {
        x = load A[i]
        store B[i] = x
    }
}
)";

const char *kDot = R"(
array X f64 256
array Y f64 256
loop dot {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        y = load Y[i]
        t = fmul x y
        s1 = fadd s t
    }
    liveout s1
}
)";

TEST(Lowering, AddsInductionAndBranch)
{
    Module m = parse(kCopy);
    Machine mach = paperMachine();
    Loop lowered = lowerForScheduling(m.loops[0], mach);
    EXPECT_EQ(lowered.numOps(), m.loops[0].numOps() + 2);
    EXPECT_EQ(lowered.ops.back().opcode, Opcode::Br);
    EXPECT_EQ(lowered.ops[static_cast<size_t>(lowered.numOps()) - 2]
                  .opcode,
              Opcode::IAdd);
    EXPECT_EQ(lowered.carried.size(), m.loops[0].carried.size() + 1);
}

TEST(Lowering, ToyMachineSkipsOverhead)
{
    Module m = parse(kCopy);
    Machine mach = toyMachine();
    Loop lowered = lowerForScheduling(m.loops[0], mach);
    EXPECT_EQ(lowered.numOps(), m.loops[0].numOps());
}

TEST(ModSched, CopyLoopHitsResMii)
{
    Scheduled s = scheduleText(kCopy, paperMachine());
    // 2 mem ops on 2 units + overhead: ResMII 1.
    EXPECT_EQ(s.result.resMii, 1);
    EXPECT_EQ(s.result.schedule.ii, 1);
}

TEST(ModSched, DotIsRecurrenceBound)
{
    Scheduled s = scheduleText(kDot, paperMachine());
    EXPECT_EQ(s.result.recMii, 4);   // FP add latency around the cycle
    EXPECT_EQ(s.result.schedule.ii, 4);
    EXPECT_GE(s.result.mii, s.result.resMii);
}

TEST(ModSched, ScheduleRespectsLatencies)
{
    Scheduled s = scheduleText(kDot, paperMachine());
    // The multiply reads both loads: it must trail them by the load
    // latency.
    const auto &t = s.result.schedule.time;
    EXPECT_GE(t[2], t[0] + 3);
    EXPECT_GE(t[2], t[1] + 3);
    EXPECT_GE(t[3], t[2] + 4);
}

TEST(ModSched, DividerOccupiesUnitForMultipleCycles)
{
    Scheduled s = scheduleText(R"(
array A f64 256
array B f64 256
loop t {
    body {
        x = load A[i]
        y = load B[i]
        q = fdiv x y
        r = fdiv y x
        store B[i + 1] = q
        store A[i + 1] = r
    }
}
)",
                               paperMachine());
    // Two unpipelined divides on two FP units: II at least the
    // divider reservation length.
    EXPECT_GE(s.result.schedule.ii, 4);
}

TEST(ModSched, SaturatedFpUnitsSetResMii)
{
    Scheduled s = scheduleText(R"(
array A f64 256
loop t {
    livein c f64
    body {
        x = load A[i]
        a = fmul x c
        b = fmul a c
        d = fmul b c
        e = fmul d c
        f = fadd a b
        g = fadd d e
        h = fadd f g
        store A[i + 1] = h
    }
}
)",
                               paperMachine());
    // 7 FP ops on 2 units -> ResMII 4 (ceil 3.5).
    EXPECT_EQ(s.result.resMii, 4);
}

TEST(ModSched, EmptyLoop)
{
    Machine mach = toyMachine();
    Loop empty;
    empty.name = "empty";
    ArrayTable arrays;
    DepGraph graph(arrays, empty, mach);
    ScheduleResult r = moduloSchedule(empty, graph, mach);
    EXPECT_TRUE(r.ok);
}

TEST(Checker, DetectsResourceCollision)
{
    Scheduled s = scheduleText(kCopy, paperMachine());
    Module m = parse(kCopy);
    Machine mach = paperMachine();
    DepGraph graph(m.arrays, s.lowered, mach);

    ModuloSchedule bad = s.result.schedule;
    // Force both memory ops onto the same unit at the same row.
    bad.time[0] = 0;
    bad.time[1] = static_cast<int64_t>(bad.ii);   // same row mod II
    bad.units[0] = bad.units[1];
    EXPECT_NE(validateSchedule(s.lowered, graph, mach, bad), "");
}

TEST(Checker, DetectsDependenceViolation)
{
    Scheduled s = scheduleText(kDot, paperMachine());
    Module m = parse(kDot);
    Machine mach = paperMachine();
    DepGraph graph(m.arrays, s.lowered, mach);

    ModuloSchedule bad = s.result.schedule;
    bad.time[2] = 0;   // multiply before its loads complete
    EXPECT_NE(validateSchedule(s.lowered, graph, mach, bad), "");
}

TEST(Checker, DetectsWrongReservationShape)
{
    Scheduled s = scheduleText(kCopy, paperMachine());
    Module m = parse(kCopy);
    Machine mach = paperMachine();
    DepGraph graph(m.arrays, s.lowered, mach);

    ModuloSchedule bad = s.result.schedule;
    bad.units[0].pop_back();
    EXPECT_NE(validateSchedule(s.lowered, graph, mach, bad), "");
}

TEST(Printer, KernelShowsEveryOp)
{
    Scheduled s = scheduleText(kDot, paperMachine());
    Machine mach = paperMachine();
    std::string text =
        formatKernel(s.lowered, mach, s.result.schedule);
    EXPECT_NE(text.find("fmul"), std::string::npos);
    EXPECT_NE(text.find("fadd"), std::string::npos);
    EXPECT_NE(text.find("load"), std::string::npos);
    EXPECT_NE(text.find("II = 4"), std::string::npos);

    std::string summary =
        formatScheduleSummary(s.lowered, s.result.schedule);
    EXPECT_NE(summary.find("II 4"), std::string::npos);
}

TEST(ModSched, StageCountMatchesLength)
{
    Scheduled s = scheduleText(kDot, paperMachine());
    const ModuloSchedule &sched = s.result.schedule;
    EXPECT_EQ(sched.stageCount(),
              sched.length() / sched.ii + 1);
}

} // anonymous namespace
} // namespace selvec
