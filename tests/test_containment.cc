/**
 * @file
 * Tests for the failure-containment contract (DESIGN.md §10):
 * deadlines and cooperative cancellation, knob validation, the
 * simulator cycle watchdog, per-loop suite quarantine with
 * byte-identical sibling reports, and replayable repro bundles.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "driver/evaluate.hh"
#include "driver/repro.hh"
#include "driver/reportjson.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "support/deadline.hh"
#include "support/faultinject.hh"
#include "workloads/workloads.hh"

namespace selvec
{
namespace
{

const char *kDotProduct = R"(
array X f64 4096
array Y f64 4096

loop dot {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        y = load Y[i]
        t = fmul x y
        s1 = fadd s t
    }
    liveout s1
}
)";

/** Three independent data-parallel kernels over shared arrays: the
 *  quarantine demo's suite. Even trip counts mean ModuloOnly's
 *  cleanup loop never runs, so each loop's simulation is exactly one
 *  bounded pipelined run — fault-site hit counts stay predictable. */
const char *kTrioLir = R"(
array A f64 256
array B f64 256
array C f64 256

loop alpha {
    body {
        a = load A[i]
        b = load B[i]
        s = fadd a b
        store C[i] = s
    }
}

loop beta {
    body {
        a = load A[i]
        c = load C[i]
        p = fmul a c
        store B[i] = p
    }
}

loop gamma {
    body {
        b = load B[i]
        c = load C[i]
        d = fsub c b
        store A[i] = d
    }
}
)";

Suite
trioSuite()
{
    Suite suite;
    suite.name = "trio";
    suite.description = "three independent kernels";
    suite.module = parseLirOrDie(kTrioLir);
    for (int i = 0; i < 3; ++i) {
        WorkloadLoop wl;
        wl.loopIndex = i;
        wl.tripCount = 64;   // even: no cleanup-loop simulation
        wl.invocations = 1;
        suite.loops.push_back(wl);
    }
    return suite;
}

/** A scratch directory under the test temp root, wiped on entry. */
std::string
freshDir(const char *leaf)
{
    std::string dir = ::testing::TempDir() + leaf;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

// ---------------------------------------------------------------------
// Deadline / CancelToken primitives.

TEST(Deadline, NeverIsUnlimited)
{
    Deadline d = Deadline::never();
    EXPECT_TRUE(d.unlimited());
    EXPECT_FALSE(d.expired());
    EXPECT_EQ(Deadline().unlimited(), true);
}

TEST(Deadline, AfterMsZeroIsAlreadyExpired)
{
    Deadline d = Deadline::afterMs(0);
    EXPECT_FALSE(d.unlimited());
    EXPECT_TRUE(d.expired());
    EXPECT_EQ(d.remainingMs(), 0);
}

TEST(Deadline, AfterMsLargeIsPending)
{
    Deadline d = Deadline::afterMs(60 * 1000);
    EXPECT_FALSE(d.unlimited());
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remainingMs(), 0);
}

TEST(Deadline, SoonerPicksTheTighterBound)
{
    Deadline none = Deadline::never();
    Deadline loose = Deadline::afterMs(60 * 1000);
    Deadline tight = Deadline::afterMs(0);

    EXPECT_TRUE(Deadline::sooner(none, none).unlimited());
    EXPECT_FALSE(Deadline::sooner(none, loose).unlimited());
    EXPECT_TRUE(Deadline::sooner(tight, loose).expired());
    EXPECT_TRUE(Deadline::sooner(loose, tight).expired());
}

TEST(CancelToken, NullTokenNeverCancels)
{
    CancelToken t;
    EXPECT_FALSE(t.valid());
    EXPECT_FALSE(t.cancelled());
    t.requestCancel();   // no-op, must not crash
    EXPECT_FALSE(t.cancelled());
}

TEST(CancelToken, CopiesAliasTheSameFlag)
{
    CancelToken t = CancelToken::create();
    CancelToken copy = t;
    EXPECT_TRUE(copy.valid());
    EXPECT_FALSE(copy.cancelled());
    t.requestCancel();
    EXPECT_TRUE(copy.cancelled());
}

// ---------------------------------------------------------------------
// Ambient context: checkDeadline and ScopedDeadline.

TEST(DeadlineContext, UnarmedThreadIsFree)
{
    EXPECT_FALSE(deadlineArmed());
    EXPECT_TRUE(checkDeadline("test").ok());
}

TEST(DeadlineContext, ExpiredScopeTripsWithStage)
{
    {
        ScopedDeadline guard(Deadline::afterMs(0));
        EXPECT_TRUE(deadlineArmed());
        Status st = checkDeadline("kl-pass");
        ASSERT_FALSE(st.ok());
        EXPECT_EQ(st.code(), ErrorCode::DeadlineExceeded);
        EXPECT_EQ(st.stage(), "kl-pass");
    }
    EXPECT_FALSE(deadlineArmed());
    EXPECT_TRUE(checkDeadline("test").ok());
}

TEST(DeadlineContext, CancellationWinsOverDeadline)
{
    CancelToken token = CancelToken::create();
    token.requestCancel();
    ScopedDeadline guard(Deadline::afterMs(0), token);
    Status st = checkDeadline("batch");
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::Cancelled);
}

TEST(DeadlineContext, NestedScopeKeepsTheSoonerDeadline)
{
    ScopedDeadline outer(Deadline::afterMs(0));
    // An unlimited inner scope cannot loosen the outer bound.
    ScopedDeadline inner(Deadline::never());
    Status st = checkDeadline("inner");
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::DeadlineExceeded);
}

TEST(DeadlineContext, NestedScopeInheritsTheOuterToken)
{
    CancelToken token = CancelToken::create();
    token.requestCancel();
    ScopedDeadline outer(Deadline::never(), token);
    ScopedDeadline inner(Deadline::afterMs(60 * 1000));   // null token
    Status st = checkDeadline("inner");
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::Cancelled);
}

TEST(DeadlineContext, AdoptInstallsVerbatim)
{
    ScopedDeadline outer(Deadline::afterMs(0));
    ASSERT_FALSE(checkDeadline("outer").ok());
    {
        // Adopting an unarmed context clears the expired bound — the
        // verbatim path the pool workers rely on.
        ScopedDeadline adopted(ScopedDeadline::AdoptTag{},
                               DeadlineContext{});
        EXPECT_FALSE(deadlineArmed());
        EXPECT_TRUE(checkDeadline("worker").ok());
    }
    EXPECT_FALSE(checkDeadline("outer").ok());
}

// ---------------------------------------------------------------------
// Knob validation at the driver entry (negative values are nonsense;
// zero stays meaningful — a zero budget is "give up immediately").

TEST(OptionValidation, NegativeScheduleKnobsAreInvalidInput)
{
    Module module = parseLirOrDie(kDotProduct);
    ArrayTable arrays = module.arrays;

    ScheduleOptions broken[4];
    broken[0].budgetFactor = -1;
    broken[1].maxIiFactor = -2;
    broken[2].maxIiSlack = -3;
    broken[3].watchdogFactor = -4;
    for (const ScheduleOptions &so : broken) {
        DriverOptions options;
        options.scheduling = so;
        Expected<CompiledProgram> program = tryCompileLoop(
            module.loops.front(), arrays, toyMachine(),
            Technique::ModuloOnly, options);
        ASSERT_FALSE(program.ok());
        EXPECT_EQ(program.status().code(), ErrorCode::InvalidInput);
        EXPECT_EQ(program.status().stage(), "driver");
        EXPECT_NE(program.status().message().find(">= 0"),
                  std::string::npos)
            << program.status().str();
    }
}

TEST(OptionValidation, NegativePartitionIterationsAreInvalidInput)
{
    Module module = parseLirOrDie(kDotProduct);
    ArrayTable arrays = module.arrays;
    DriverOptions options;
    options.partition.maxIterations = -1;
    Expected<CompiledProgram> program = tryCompileLoop(
        module.loops.front(), arrays, toyMachine(),
        Technique::Selective, options);
    ASSERT_FALSE(program.ok());
    EXPECT_EQ(program.status().code(), ErrorCode::InvalidInput);
    EXPECT_EQ(program.status().stage(), "driver");
}

TEST(OptionValidation, ZeroWatchdogFactorIsAValidKnob)
{
    Module module = parseLirOrDie(kDotProduct);
    ArrayTable arrays = module.arrays;
    DriverOptions options;
    options.scheduling.watchdogFactor = 0;   // watchdog disabled
    Expected<CompiledProgram> program = tryCompileLoop(
        module.loops.front(), arrays, toyMachine(),
        Technique::ModuloOnly, options);
    EXPECT_TRUE(program.ok()) << program.status().str();
}

// ---------------------------------------------------------------------
// Deadline trips inside the long pipeline loops.

TEST(DeadlineTrip, ExpiredDeadlineStopsTheKlSearch)
{
    Module module = parseLirOrDie(kDotProduct);
    ArrayTable arrays = module.arrays;
    ScopedDeadline guard(Deadline::afterMs(0));
    Expected<CompiledProgram> program = tryCompileLoop(
        module.loops.front(), arrays, toyMachine(),
        Technique::Selective);
    ASSERT_FALSE(program.ok());
    EXPECT_EQ(program.status().code(), ErrorCode::DeadlineExceeded);
}

TEST(DeadlineTrip, ExpiredDeadlineStopsTheModuloScheduler)
{
    Module module = parseLirOrDie(kDotProduct);
    ArrayTable arrays = module.arrays;
    ScopedDeadline guard(Deadline::afterMs(0));
    Expected<CompiledProgram> program = tryCompileLoop(
        module.loops.front(), arrays, toyMachine(),
        Technique::ModuloOnly);
    ASSERT_FALSE(program.ok());
    EXPECT_EQ(program.status().code(), ErrorCode::DeadlineExceeded);
}

TEST(DeadlineTrip, SchedulerHangFailsInstantlyWithoutADeadline)
{
    Module module = parseLirOrDie(kDotProduct);
    ArrayTable arrays = module.arrays;
    FaultPlan plan = parseFaultPlan("modsched.stall").value();
    ScopedFaultPlan armed(plan);
    Expected<CompiledProgram> program = tryCompileLoop(
        module.loops.front(), arrays, toyMachine(),
        Technique::ModuloOnly);
    ASSERT_FALSE(program.ok());
    EXPECT_EQ(program.status().code(),
              ErrorCode::ScheduleBudgetExhausted);
    EXPECT_NE(program.status().message().find("no deadline armed"),
              std::string::npos)
        << program.status().str();
}

TEST(DeadlineTrip, SchedulerHangIsContainedByTheDeadline)
{
    Module module = parseLirOrDie(kDotProduct);
    ArrayTable arrays = module.arrays;
    FaultPlan plan = parseFaultPlan("modsched.stall").value();
    ScopedFaultPlan armed(plan);
    ScopedDeadline guard(Deadline::afterMs(50));
    Expected<CompiledProgram> program = tryCompileLoop(
        module.loops.front(), arrays, toyMachine(),
        Technique::ModuloOnly);
    ASSERT_FALSE(program.ok());
    EXPECT_EQ(program.status().code(), ErrorCode::DeadlineExceeded);
}

TEST(DeadlineTrip, SequentialPollCadenceStillLandsTheTrip)
{
    // The sequential engine polls the ambient deadline once per 1024
    // op instances, not per instance: the trip must still land both
    // below the cadence (the poll fires on instance 0) and far above
    // it (the poll keeps firing across the run).
    Module module = parseLirOrDie(kDotProduct);
    MemoryImage mem(module.arrays);
    mem.fillPattern(1);
    LiveEnv env;
    env["s0"] = RtVal::scalarF(0.0);

    ScopedDeadline guard(Deadline::afterMs(0));
    for (int64_t n_body : {int64_t{4}, int64_t{4000}}) {
        Expected<RunOutput> run =
            tryExecuteLoop(module.arrays, module.loops.front(),
                           toyMachine(), mem, env, n_body);
        ASSERT_FALSE(run.ok()) << "n_body " << n_body;
        EXPECT_EQ(run.status().code(), ErrorCode::DeadlineExceeded);
        EXPECT_EQ(run.status().stage(), "sim");
    }
}

TEST(DeadlineTrip, SequentialRunWithoutLimitsNeverPolls)
{
    // executeLoop (no limits) must stay deadline-free: an expired
    // ambient deadline does not abort an unbounded reference run.
    Module module = parseLirOrDie(kDotProduct);
    MemoryImage mem(module.arrays);
    mem.fillPattern(1);
    LiveEnv env;
    env["s0"] = RtVal::scalarF(0.0);

    ScopedDeadline guard(Deadline::afterMs(0));
    RunOutput out = executeLoop(module.arrays, module.loops.front(),
                                toyMachine(), mem, env, 2000);
    EXPECT_EQ(out.bodyIterations, 2000);
}

// ---------------------------------------------------------------------
// The simulator cycle watchdog.

TEST(Watchdog, ExplicitCycleCeilingTrips)
{
    Module module = parseLirOrDie(kDotProduct);
    ArrayTable arrays = module.arrays;
    CompiledProgram program = compileLoopOrDie(
        module.loops.front(), arrays, toyMachine(),
        Technique::ModuloOnly);

    MemoryImage mem(arrays);
    mem.fillPattern(1);
    LiveEnv env;
    env["s0"] = RtVal::scalarF(0.0);

    ExecLimits limits;
    limits.maxCycles = 1;   // no pipeline finishes in one cycle
    Expected<ExecResult> run = tryRunCompiled(
        program, arrays, toyMachine(), mem, env, 64, limits);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), ErrorCode::WatchdogTripped);
    EXPECT_EQ(run.status().stage(), "sim");
}

TEST(Watchdog, ValidScheduleNeverTripsTheDerivedBound)
{
    Module module = parseLirOrDie(kDotProduct);
    ArrayTable arrays = module.arrays;
    CompiledProgram program = compileLoopOrDie(
        module.loops.front(), arrays, toyMachine(),
        Technique::ModuloOnly);

    MemoryImage mem(arrays);
    mem.fillPattern(1);
    LiveEnv env;
    env["s0"] = RtVal::scalarF(0.0);

    ExecLimits limits;
    limits.watchdogFactor = 16;
    Expected<ExecResult> run = tryRunCompiled(
        program, arrays, toyMachine(), mem, env, 64, limits);
    ASSERT_TRUE(run.ok()) << run.status().str();
    EXPECT_GT(run.value().cycles, 0);
}

TEST(Watchdog, FaultSiteForcesATripOnBoundedRunsOnly)
{
    Module module = parseLirOrDie(kDotProduct);
    ArrayTable arrays = module.arrays;
    CompiledProgram program = compileLoopOrDie(
        module.loops.front(), arrays, toyMachine(),
        Technique::ModuloOnly);

    MemoryImage mem(arrays);
    mem.fillPattern(1);
    LiveEnv env;
    env["s0"] = RtVal::scalarF(0.0);

    FaultPlan plan = parseFaultPlan("sim.watchdog:*").value();
    ScopedFaultPlan armed(plan);

    // Unbounded run: the site is never polled, execution is clean.
    Expected<ExecResult> free_run = tryRunCompiled(
        program, arrays, toyMachine(), mem, env, 64, ExecLimits{});
    EXPECT_TRUE(free_run.ok()) << free_run.status().str();

    // Bounded run: the armed site forces the trip.
    ExecLimits limits;
    limits.watchdogFactor = 16;
    MemoryImage mem2(arrays);
    mem2.fillPattern(1);
    Expected<ExecResult> bounded = tryRunCompiled(
        program, arrays, toyMachine(), mem2, env, 64, limits);
    ASSERT_FALSE(bounded.ok());
    EXPECT_EQ(bounded.status().code(), ErrorCode::WatchdogTripped);
}

// ---------------------------------------------------------------------
// Suite quarantine.

TEST(Quarantine, HungAndDivergentLoopsAreContained)
{
    Suite suite = trioSuite();
    Machine machine = paperMachine();

    SuiteReport report;
    {
        // The containment demo: the scheduler "hangs" on the second
        // loop's main schedule (each compile takes two schedules, so
        // hit 2 is beta's), and the simulator watchdog fires on the
        // third loop's pipelined run (hit 0 is alpha's clean run).
        FaultPlan plan =
            parseFaultPlan("modsched.stall:2+1,sim.watchdog:1+1")
                .value();
        ScopedFaultPlan armed(plan);

        EvaluateOptions options;
        options.deadlineMs = 200;   // per loop; contains the stall
        report = evaluateSuite(suite, machine, Technique::ModuloOnly,
                               options);
    }

    ASSERT_EQ(report.loops.size(), 1u);
    EXPECT_EQ(report.loops[0].name, "alpha");

    ASSERT_EQ(report.failures.size(), 2u);
    EXPECT_EQ(report.failures[0].name, "beta");
    EXPECT_EQ(report.failures[0].status.code(),
              ErrorCode::DeadlineExceeded);
    EXPECT_TRUE(report.failures[0].hasAudit);
    EXPECT_EQ(report.failures[1].name, "gamma");
    EXPECT_EQ(report.failures[1].status.code(),
              ErrorCode::WatchdogTripped);
    EXPECT_FALSE(report.failures[1].hasAudit);

    // The surviving sibling is byte-identical to its clean-run self.
    SuiteReport clean = evaluateSuite(suite, machine,
                                      Technique::ModuloOnly);
    ASSERT_EQ(clean.loops.size(), 3u);
    EXPECT_TRUE(clean.failures.empty());
    EXPECT_EQ(jsonOfLoopReport(report.loops[0]).dump(),
              jsonOfLoopReport(clean.loops[0]).dump());
    EXPECT_EQ(report.totalCycles, clean.loops[0].weightedCycles);
}

TEST(Quarantine, CleanBoundedRunIsByteIdenticalToUnbounded)
{
    Suite suite = trioSuite();
    Machine machine = paperMachine();

    SuiteReport unbounded = evaluateSuite(suite, machine,
                                          Technique::ModuloOnly);
    EvaluateOptions bounded;
    bounded.deadlineMs = 60 * 1000;
    SuiteReport guarded = evaluateSuite(suite, machine,
                                        Technique::ModuloOnly, bounded);

    EXPECT_TRUE(guarded.failures.empty());
    EXPECT_EQ(jsonOfSuiteReport(guarded).dump(),
              jsonOfSuiteReport(unbounded).dump());
}

TEST(Quarantine, ReportIsJobsInvariant)
{
    Suite suite = trioSuite();
    Machine machine = paperMachine();

    EvaluateOptions serial;
    serial.deadlineMs = 60 * 1000;
    serial.jobs = 1;
    EvaluateOptions wide = serial;
    wide.jobs = 4;

    SuiteReport a = evaluateSuite(suite, machine,
                                  Technique::ModuloOnly, serial);
    SuiteReport b = evaluateSuite(suite, machine,
                                  Technique::ModuloOnly, wide);
    EXPECT_EQ(jsonOfSuiteReport(a).dump(),
              jsonOfSuiteReport(b).dump());
}

TEST(Quarantine, CancelledBatchQuarantinesEveryLoop)
{
    Suite suite = trioSuite();
    Machine machine = paperMachine();

    EvaluateOptions options;
    options.cancel = CancelToken::create();
    options.cancel.requestCancel();

    SuiteReport serial = evaluateSuite(suite, machine,
                                       Technique::ModuloOnly, options);
    EXPECT_TRUE(serial.loops.empty());
    ASSERT_EQ(serial.failures.size(), 3u);
    for (const LoopFailure &f : serial.failures)
        EXPECT_EQ(f.status.code(), ErrorCode::Cancelled);

    // Cancellation lands identically at any parallelism.
    options.jobs = 4;
    SuiteReport wide = evaluateSuite(suite, machine,
                                     Technique::ModuloOnly, options);
    EXPECT_EQ(jsonOfSuiteReport(wide).dump(),
              jsonOfSuiteReport(serial).dump());
}

TEST(Quarantine, FailuresAppearInTheJsonDocument)
{
    Suite suite = trioSuite();
    FaultPlan plan = parseFaultPlan("modsched.search:*").value();
    ScopedFaultPlan armed(plan);

    SuiteReport report = evaluateSuite(suite, paperMachine(),
                                       Technique::ModuloOnly);
    ASSERT_EQ(report.failures.size(), 3u);

    JsonValue doc = jsonOfSuiteReport(report);
    std::string text = doc.dump();
    EXPECT_NE(text.find("\"failures\""), std::string::npos);
    EXPECT_NE(text.find("\"error_code\""), std::string::npos);
    EXPECT_NE(text.find("schedule-budget-exhausted"),
              std::string::npos);
    // Timings stay out of documents unless SELVEC_TIMINGS is set.
    EXPECT_NE(text.find("\"elapsed_ms\": 0"), std::string::npos);
}

// ---------------------------------------------------------------------
// Repro bundles.

TEST(Repro, MachineDescriptionRoundTrips)
{
    const Machine machines[] = {paperMachine(), toyMachine(),
                                directMoveMachine(), wideMachine(),
                                embeddedMachine()};
    for (const Machine &machine : machines) {
        JsonValue doc = jsonOfMachine(machine);
        Expected<Machine> back = machineOfJson(doc);
        ASSERT_TRUE(back.ok()) << back.status().str();
        EXPECT_EQ(jsonOfMachine(back.value()).dump(), doc.dump());
    }
}

TEST(Repro, FailedLoopWritesAReplayableBundle)
{
    std::string dir = freshDir("selvec_repro_test");
    Suite suite = dotProductSuite();

    std::string path;
    {
        FaultPlan plan = parseFaultPlan("modsched.search:*").value();
        ScopedFaultPlan armed(plan);

        EvaluateOptions options;
        options.reproDir = dir;
        SuiteReport report = evaluateSuite(
            suite, paperMachine(), Technique::ModuloOnly, options);
        ASSERT_EQ(report.failures.size(), 1u);
        EXPECT_EQ(report.failures[0].status.code(),
                  ErrorCode::ScheduleBudgetExhausted);

        path = dir + "/" + suite.name + "." +
               report.failures[0].name + "." +
               techniqueName(Technique::ModuloOnly) + ".repro.json";
    }
    // The plan is cleared now; only the bundle remembers it.

    Expected<ReproBundle> loaded = loadReproBundle(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().str();
    const ReproBundle &bundle = loaded.value();
    EXPECT_EQ(bundle.faultPlan, "modsched.search:*");
    EXPECT_EQ(bundle.technique, Technique::ModuloOnly);
    EXPECT_EQ(bundle.failure.code(),
              ErrorCode::ScheduleBudgetExhausted);
    ASSERT_EQ(bundle.module.loops.size(), 1u);

    // The bundle round-trips through its own JSON byte-for-byte.
    JsonValue doc = jsonOfReproBundle(bundle);
    Expected<ReproBundle> again = reproBundleOfJson(doc);
    ASSERT_TRUE(again.ok()) << again.status().str();
    EXPECT_EQ(jsonOfReproBundle(again.value()).dump(), doc.dump());

    // Replaying re-arms the recorded plan and reproduces the code.
    ReplayOutcome outcome = replayBundle(bundle);
    EXPECT_TRUE(outcome.reproduced) << outcome.status.str();
    EXPECT_EQ(outcome.status.code(),
              ErrorCode::ScheduleBudgetExhausted);
    EXPECT_FALSE(faultPlanArmed());   // replay restored the plan

    std::filesystem::remove_all(dir);
}

TEST(Repro, CleanConfigurationDoesNotReproduce)
{
    Suite suite = dotProductSuite();
    const WorkloadLoop &wl = suite.loops.front();

    ReproBundle bundle;
    bundle.name = suite.loopOf(wl).name;
    bundle.module.arrays = suite.module.arrays;
    bundle.module.loops.push_back(suite.loopOf(wl));
    bundle.liveIns = wl.liveIns;
    bundle.machine = paperMachine();
    bundle.technique = Technique::ModuloOnly;
    bundle.tripCount = wl.tripCount;
    bundle.memPattern = 1;
    // Claim a failure that a healthy pipeline cannot produce.
    bundle.failure = Status::error(ErrorCode::ScheduleBudgetExhausted,
                                   "modsched", "stale claim");

    ReplayOutcome outcome = replayBundle(bundle);
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.str();
    EXPECT_FALSE(outcome.reproduced);
}

} // anonymous namespace
} // namespace selvec
