/**
 * @file
 * Property-based tests over randomly generated loops: for every seed,
 * machine and technique, the compiled software pipeline must be
 * bit-identical to the sequential reference, schedules must respect
 * their lower bounds, and the partitioner must obey its cost
 * invariants.
 */

#include <gtest/gtest.h>

#include "analysis/depgraph.hh"
#include "core/partition.hh"
#include "core/transform.hh"
#include "pipeline/checker.hh"
#include "pipeline/lowering.hh"
#include "driver/driver.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "ir/verifier.hh"
#include "workloads/generator.hh"

namespace selvec
{
namespace
{

class RandomLoops : public ::testing::TestWithParam<int>
{
  protected:
    GeneratedLoop
    make() const
    {
        Rng rng(0xABCD0000u + static_cast<uint64_t>(GetParam()));
        return generateLoop(rng);
    }
};

TEST_P(RandomLoops, GeneratedLoopsAreValid)
{
    GeneratedLoop g = make();
    EXPECT_GT(g.loop().numOps(), 0);
    // The builder verified it; re-run explicitly for a clear failure.
    EXPECT_EQ(verifyLoop(g.module.arrays, g.loop()), "");
}

TEST_P(RandomLoops, AllTechniquesMatchReference)
{
    GeneratedLoop g = make();
    for (Technique technique :
         {Technique::ModuloOnly, Technique::Traditional,
          Technique::Full, Technique::Selective}) {
        for (int mi = 0; mi < 3; ++mi) {
            Machine machine = mi == 0   ? paperMachine()
                              : mi == 1 ? toyMachine()
                                        : directMoveMachine();
            ArrayTable arrays = g.module.arrays;
            DriverOptions options;
            options.expansionSize = 256;
            CompiledProgram program = compileLoop(
                g.loop(), arrays, machine, technique, options);

            for (int64_t n : {5, 31, 64}) {
                MemoryImage mem(arrays);
                mem.fillPattern(42 + static_cast<uint64_t>(n));
                ExecResult got = runCompiled(program, arrays, machine,
                                             mem, g.liveIns, n);

                MemoryImage ref(arrays);
                ref.fillPattern(42 + static_cast<uint64_t>(n));
                ExecResult want = runReference(
                    g.loop(), arrays, machine, ref, g.liveIns, n);

                ASSERT_EQ(mem.diff(ref), "")
                    << techniqueName(technique) << " n=" << n
                    << " machine=" << machine.name;
                for (ValueId v : g.loop().liveOuts) {
                    const std::string &name =
                        g.loop().valueInfo(v).name;
                    if (!want.env.count(name))
                        continue;
                    ASSERT_TRUE(got.env.count(name))
                        << name << " missing, "
                        << techniqueName(technique);
                    ASSERT_EQ(got.env.at(name), want.env.at(name))
                        << name << " " << techniqueName(technique)
                        << " n=" << n;
                }
            }
        }
    }
}

TEST_P(RandomLoops, ScheduleNeverBeatsItsLowerBounds)
{
    GeneratedLoop g = make();
    Machine machine = paperMachine();
    ArrayTable arrays = g.module.arrays;
    for (Technique technique :
         {Technique::ModuloOnly, Technique::Full,
          Technique::Selective}) {
        CompiledProgram program =
            compileLoop(g.loop(), arrays, machine, technique);
        for (const CompiledLoop &cl : program.loops) {
            EXPECT_GE(cl.mainSchedule.ii, cl.mainResMii);
            EXPECT_GE(cl.mainSchedule.ii, cl.mainRecMii);
        }
    }
}

TEST_P(RandomLoops, PartitionCostInvariants)
{
    GeneratedLoop g = make();
    Machine machine = paperMachine();
    DepGraph graph(g.module.arrays, g.loop(), machine);
    VectAnalysis va = analyzeVectorizable(g.loop(), graph, machine);
    PartitionResult pr = partitionOps(g.loop(), va, machine);

    // Kernighan-Lin starts all-scalar and keeps the best seen.
    EXPECT_LE(pr.bestCost, pr.allScalarCost);
    // Every vectorized op is a legal candidate.
    for (OpId op = 0; op < g.loop().numOps(); ++op) {
        if (pr.vectorize[static_cast<size_t>(op)]) {
            EXPECT_TRUE(va.vectorizable[static_cast<size_t>(op)]);
        }
    }
}

TEST_P(RandomLoops, TestSwitchLeavesBinsIntact)
{
    GeneratedLoop g = make();
    Machine machine = paperMachine();
    DepGraph graph(g.module.arrays, g.loop(), machine);
    VectAnalysis va = analyzeVectorizable(g.loop(), graph, machine);

    PartitionCostModel model(g.loop(), va, machine);
    std::vector<bool> part(static_cast<size_t>(g.loop().numOps()),
                           false);
    // Exercise from a random mixed configuration.
    Rng rng(7 + static_cast<uint64_t>(GetParam()));
    for (OpId op = 0; op < g.loop().numOps(); ++op) {
        part[static_cast<size_t>(op)] =
            va.vectorizable[static_cast<size_t>(op)] &&
            rng.chance(0.5);
    }
    model.rebuild(part);
    int64_t baseline = model.cost();
    for (OpId op = 0; op < g.loop().numOps(); ++op) {
        if (!va.vectorizable[static_cast<size_t>(op)])
            continue;
        model.testSwitch(op);
        ASSERT_EQ(model.cost(), baseline) << "op " << op;
    }
}

TEST_P(RandomLoops, TransformedLoopsRoundTripThroughLir)
{
    GeneratedLoop g = make();
    for (int mi = 0; mi < 3; ++mi) {
        Machine machine = mi == 0   ? paperMachine()
                          : mi == 1 ? toyMachine()
                                    : directMoveMachine();
        DepGraph graph(g.module.arrays, g.loop(), machine);
        VectAnalysis va = analyzeVectorizable(g.loop(), graph, machine);
        Loop vec = transformLoop(g.loop(), g.module.arrays, va,
                                 va.vectorizable, machine);

        Module round;
        round.arrays = g.module.arrays;
        round.loops.push_back(vec);
        std::string text = writeLir(round);
        ParseResult pr = parseLir(text);
        ASSERT_TRUE(pr.ok)
            << machine.name << ": " << pr.error << "\n" << text;
        const Loop &back = pr.module.loops.front();
        ASSERT_EQ(back.numOps(), vec.numOps()) << machine.name;
        for (OpId i = 0; i < vec.numOps(); ++i) {
            EXPECT_EQ(back.op(i).opcode, vec.op(i).opcode);
            EXPECT_EQ(back.op(i).srcs.size(), vec.op(i).srcs.size());
            EXPECT_EQ(back.op(i).ref.scale, vec.op(i).ref.scale);
            EXPECT_EQ(back.op(i).ref.offset, vec.op(i).ref.offset);
        }
        EXPECT_EQ(back.carried.size(), vec.carried.size());
        EXPECT_EQ(back.preloads.size(), vec.preloads.size());
        EXPECT_EQ(back.poststores.size(), vec.poststores.size());
        EXPECT_EQ(back.splatIns.size(), vec.splatIns.size());
        EXPECT_EQ(back.coverage, vec.coverage);
    }
}

TEST_P(RandomLoops, PartitionCostEqualsTransformedResMii)
{
    // The strongest coherence property of the backend approach: the
    // bins the partitioner packed are exactly the operations the
    // transformer emits, so the predicted cost IS the transformed
    // loop's ResMII.
    GeneratedLoop g = make();
    Machine machine = paperMachine();
    ArrayTable arrays = g.module.arrays;
    CompiledProgram p =
        compileLoop(g.loop(), arrays, machine, Technique::Selective);
    EXPECT_EQ(p.loops[0].mainResMii, p.partition.bestCost);
}

TEST_P(RandomLoops, LargeLoopsScheduleValidly)
{
    // Stress the iterative scheduler's displacement machinery with
    // bigger bodies than the suites use; the checker re-validates
    // resources and every dependence edge.
    Rng rng(0xBEEF0000u + static_cast<uint64_t>(GetParam()));
    GeneratorOptions big;
    big.minOps = 40;
    big.maxOps = 80;
    big.divProb = 0.10;
    GeneratedLoop g = generateLoop(rng, big);

    for (int mi = 0; mi < 2; ++mi) {
        Machine machine = mi == 0 ? paperMachine() : toyMachine();
        Loop lowered = lowerForScheduling(g.loop(), machine);
        DepGraph graph(g.module.arrays, lowered, machine);
        ScheduleResult sr = moduloSchedule(lowered, graph, machine);
        ASSERT_TRUE(sr.ok) << sr.error;
        EXPECT_EQ(validateSchedule(lowered, graph, machine,
                                   sr.schedule),
                  "");
        EXPECT_GE(sr.schedule.ii, sr.mii);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLoops, ::testing::Range(0, 40));

} // anonymous namespace
} // namespace selvec
