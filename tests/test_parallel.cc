/**
 * @file
 * Tests for the parallel-compilation layer: the fixed thread pool,
 * thread-local stat sinks, the structural compile cache, and the
 * headline determinism contract — evaluateSuite and the bench
 * documents built from it are byte-identical for every --jobs value
 * and for cold vs warm caches (stats.cache aside, which records the
 * cache's own traffic).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include "driver/compilecache.hh"
#include "driver/driver.hh"
#include "driver/evaluate.hh"
#include "driver/reportjson.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "support/stats.hh"
#include "support/threadpool.hh"
#include "workloads/workloads.hh"

namespace selvec
{
namespace
{

// ---------------------------------------------------------------------
// Thread pool.

TEST(ThreadPool, ResolveJobs)
{
    EXPECT_EQ(resolveJobs(1), 1);
    EXPECT_EQ(resolveJobs(7), 7);
    EXPECT_GE(resolveJobs(0), 1);
    EXPECT_GE(resolveJobs(-3), 1);
}

TEST(ThreadPool, VisitsEveryIndexExactlyOnce)
{
    for (int jobs : {1, 2, 8}) {
        ThreadPool pool(jobs);
        const size_t n = 100;
        std::vector<std::atomic<int>> visits(n);
        pool.parallelFor(n, [&](size_t i) { visits[i].fetch_add(1); });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(visits[i].load(), 1) << "jobs=" << jobs;
    }
}

TEST(ThreadPool, SingleJobRunsInlineOnCaller)
{
    ThreadPool pool(1);
    std::thread::id caller = std::this_thread::get_id();
    std::set<std::thread::id> seen;
    pool.parallelFor(4, [&](size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ThreadPool, EmptyBatchIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, FirstExceptionPropagates)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(16,
                         [&](size_t i) {
                             if (i % 2 == 0)
                                 throw std::runtime_error("task died");
                         }),
        std::runtime_error);
    // The pool survives a failed batch.
    std::atomic<int> count{0};
    pool.parallelFor(8, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, CollectsEveryFailureNotJustTheFirst)
{
    // parallelForAll keeps one slot per index: concurrent failures
    // are all observable, and they land at their own indices — the
    // collect-all semantics suite quarantine is built on.
    for (int jobs : {1, 4}) {
        ThreadPool pool(jobs);
        std::vector<std::exception_ptr> errors =
            pool.parallelForAll(10, [&](size_t i) {
                if (i % 3 == 0)
                    throw std::runtime_error(
                        "task " + std::to_string(i) + " died");
            });
        ASSERT_EQ(errors.size(), 10u) << "jobs=" << jobs;
        for (size_t i = 0; i < errors.size(); ++i) {
            if (i % 3 != 0) {
                EXPECT_EQ(errors[i], nullptr) << i;
                continue;
            }
            ASSERT_NE(errors[i], nullptr) << i;
            try {
                std::rethrow_exception(errors[i]);
            } catch (const std::runtime_error &e) {
                EXPECT_EQ(std::string(e.what()),
                          "task " + std::to_string(i) + " died");
            }
        }
    }
}

TEST(ThreadPool, ParallelForRethrowsLowestFailedIndex)
{
    // parallelFor's exception choice is deterministic: index order,
    // not completion order.
    ThreadPool pool(8);
    for (int round = 0; round < 3; ++round) {
        try {
            pool.parallelFor(16, [&](size_t i) {
                if (i == 5 || i == 11)
                    throw std::runtime_error(std::to_string(i));
            });
            FAIL() << "batch should have thrown";
        } catch (const std::runtime_error &e) {
            EXPECT_EQ(std::string(e.what()), "5");
        }
    }
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool outer(4);
    std::atomic<int> total{0};
    outer.parallelFor(4, [&](size_t) {
        ThreadPool inner(4);
        std::thread::id me = std::this_thread::get_id();
        inner.parallelFor(4, [&](size_t) {
            // Re-entrant batches run inline on the worker itself;
            // anything else risks deadlock through sink/trace state.
            EXPECT_EQ(std::this_thread::get_id(), me);
            total.fetch_add(1);
        });
    });
    EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, RecordsBatchAndTaskStats)
{
    StatsRegistry sink;
    {
        ScopedStatsSink scope(sink);
        ThreadPool pool(1);
        pool.parallelFor(5, [](size_t) {});
    }
    EXPECT_EQ(sink.value("pool.batches"), 1);
    EXPECT_EQ(sink.value("pool.tasks"), 5);
}

// ---------------------------------------------------------------------
// Thread-local stat sinks.

TEST(StatsSink, RedirectsAndMergesInOrder)
{
    StatsRegistry outer;
    StatsRegistry a, b;
    {
        ScopedStatsSink sa(a);
        globalStats().add("x.counter", 2);
        globalStats().setGauge("x.gauge", 10);
        {
            // Nesting restores the previous sink, not the process
            // registry.
            ScopedStatsSink sb(b);
            globalStats().add("x.counter", 5);
            globalStats().setGauge("x.gauge", 20);
        }
        globalStats().add("x.counter", 1);
    }
    EXPECT_EQ(a.value("x.counter"), 3);
    EXPECT_EQ(b.value("x.counter"), 5);

    outer.mergeFrom(a);
    outer.mergeFrom(b);
    EXPECT_EQ(outer.value("x.counter"), 8);
    EXPECT_EQ(outer.value("x.gauge"), 20);   // last merge wins
}

TEST(StatsSink, MergeFilterPrefixDropsKeys)
{
    StatsRegistry src, dst;
    src.add("cache.hit", 3);
    src.add("driver.compiles", 2);
    dst.mergeFrom(src, "cache.");
    EXPECT_EQ(dst.value("cache.hit"), 0);
    EXPECT_EQ(dst.value("driver.compiles"), 2);
}

TEST(StatsSink, ToJsonCanZeroTimerNs)
{
    StatsRegistry reg;
    reg.addTimerNs("time.compile", 1234);
    JsonValue with = reg.toJson(true);
    JsonValue without = reg.toJson(false);
    EXPECT_EQ(with.findPath("time.compile.total_ns")->intValue(), 1234);
    EXPECT_EQ(without.findPath("time.compile.total_ns")->intValue(), 0);
    // Sample counts are deterministic and stay.
    EXPECT_EQ(without.findPath("time.compile.samples")->intValue(), 1);
}

// ---------------------------------------------------------------------
// Structural compile cache.

const char *kCacheSaxpy = R"(
array X f64 4096
array Y f64 4096
loop saxpy {
    livein a f64
    body {
        x = load X[i]
        y = load Y[i]
        ax = fmul a x
        s = fadd ax y
        store Y[i] = s
    }
}
)";

class CompileCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasEnabled = compileCacheEnabled();
        compileCacheSetEnabled(true);
        compileCacheClear();
    }

    void
    TearDown() override
    {
        compileCacheClear();
        compileCacheSetEnabled(wasEnabled);
    }

    bool wasEnabled = true;
};

TEST_F(CompileCacheTest, StructuralCacheComputesOncePerKey)
{
    StructuralCache<int> cache;
    std::atomic<int> computed{0};
    auto compute = [&] {
        computed.fetch_add(1);
        return 42;
    };
    int64_t hits0 = processStats().value("cache.hit");
    EXPECT_EQ(*cache.lookupOrCompute("k", compute), 42);
    EXPECT_EQ(*cache.lookupOrCompute("k", compute), 42);
    EXPECT_EQ(computed.load(), 1);
    EXPECT_EQ(processStats().value("cache.hit"), hits0 + 1);

    // Concurrent requests for one key deduplicate.
    ThreadPool pool(8);
    pool.parallelFor(16, [&](size_t) {
        EXPECT_EQ(*cache.lookupOrCompute("k2", compute), 42);
    });
    EXPECT_EQ(computed.load(), 2);
    EXPECT_EQ(cache.size(), 2u);
}

TEST_F(CompileCacheTest, KeySeparatesStructureNotNames)
{
    Module m = parseLirOrDie(kCacheSaxpy);
    Machine a = paperMachine();
    Machine b = paperMachine();
    b.name = "renamed-but-identical";
    DriverOptions options;
    const Loop &loop = m.loops[0];
    // The machine name is presentation, not structure.
    EXPECT_EQ(compileCacheKey(loop, m.arrays, a, Technique::Selective,
                              options),
              compileCacheKey(loop, m.arrays, b, Technique::Selective,
                              options));

    Machine c = paperMachine();
    c.vectorLength *= 2;
    EXPECT_NE(compileCacheKey(loop, m.arrays, a, Technique::Selective,
                              options),
              compileCacheKey(loop, m.arrays, c, Technique::Selective,
                              options));

    // A knob that cannot reach the ModuloOnly codepath does not
    // fragment its key...
    DriverOptions comm_off;
    comm_off.partition.cost.considerCommunication = false;
    EXPECT_EQ(compileCacheKey(loop, m.arrays, a, Technique::ModuloOnly,
                              options),
              compileCacheKey(loop, m.arrays, a, Technique::ModuloOnly,
                              comm_off));
    // ...but does separate Selective compiles, where it changes the
    // partition.
    EXPECT_NE(compileCacheKey(loop, m.arrays, a, Technique::Selective,
                              options),
              compileCacheKey(loop, m.arrays, a, Technique::Selective,
                              comm_off));
}

TEST_F(CompileCacheTest, HitReturnsBitIdenticalProgram)
{
    Module m = parseLirOrDie(kCacheSaxpy);
    Machine machine = paperMachine();
    for (Technique t :
         {Technique::ModuloOnly, Technique::Traditional, Technique::Full,
          Technique::Selective}) {
        compileCacheClear();
        int64_t miss0 = processStats().value("cache.miss");
        int64_t hit0 = processStats().value("cache.hit");

        ArrayTable cold_arrays = m.arrays;
        Expected<CompiledProgram> cold = tryCompileLoop(
            m.loops[0], cold_arrays, machine, t);
        ASSERT_TRUE(cold.ok());
        EXPECT_GT(processStats().value("cache.miss"), miss0);

        ArrayTable warm_arrays = m.arrays;
        Expected<CompiledProgram> warm = tryCompileLoop(
            m.loops[0], warm_arrays, machine, t);
        ASSERT_TRUE(warm.ok());
        EXPECT_GT(processStats().value("cache.hit"), hit0);

        // The replayed program and array table are bit-identical to
        // the first compile's.
        EXPECT_EQ(jsonOfCompiledProgram(cold.value()).dump(),
                  jsonOfCompiledProgram(warm.value()).dump())
            << techniqueName(t);
        ASSERT_EQ(cold_arrays.size(), warm_arrays.size());
        for (ArrayId a = 0; a < cold_arrays.size(); ++a) {
            EXPECT_EQ(cold_arrays[a].name, warm_arrays[a].name);
            EXPECT_EQ(cold_arrays[a].size, warm_arrays[a].size);
        }
    }
}

TEST_F(CompileCacheTest, HitReplaysStatsDelta)
{
    Module m = parseLirOrDie(kCacheSaxpy);
    Machine machine = paperMachine();

    StatsRegistry cold_stats;
    {
        ScopedStatsSink sink(cold_stats);
        ArrayTable arrays = m.arrays;
        ASSERT_TRUE(
            tryCompileLoop(m.loops[0], arrays, machine,
                           Technique::Selective).ok());
    }
    StatsRegistry warm_stats;
    {
        ScopedStatsSink sink(warm_stats);
        ArrayTable arrays = m.arrays;
        ASSERT_TRUE(
            tryCompileLoop(m.loops[0], arrays, machine,
                           Technique::Selective).ok());
    }
    // The warm run's compile stats are the replayed delta: identical
    // to the cold run's, so merged reports are independent of which
    // requests hit. (cache.* itself goes to the process registry.)
    EXPECT_EQ(cold_stats.toJson(false).dump(),
              warm_stats.toJson(false).dump());
}

TEST_F(CompileCacheTest, BypassScopeDisablesCaching)
{
    EXPECT_TRUE(compileCacheActive());
    {
        CacheBypassScope bypass;
        EXPECT_FALSE(compileCacheActive());
        CacheBypassScope nested;
        EXPECT_FALSE(compileCacheActive());
    }
    EXPECT_TRUE(compileCacheActive());

    compileCacheSetEnabled(false);
    EXPECT_FALSE(compileCacheActive());
    compileCacheSetEnabled(true);
}

// ---------------------------------------------------------------------
// End-to-end determinism.

/** The full selvec-bench-v1 document a bench binary would emit for
 *  one suite, with stats taken from `sink` (timers zeroed: wall time
 *  is the one legitimately nondeterministic quantity). */
std::string
documentOf(const SuiteReport &base,
           const std::vector<SuiteReport> &techniques,
           const StatsRegistry &sink)
{
    JsonValue doc = benchDocument("test_parallel", "quick");
    JsonValue suites = JsonValue::array();
    suites.append(jsonOfSuiteComparison(base, techniques));
    doc.set("suites", std::move(suites));
    doc.set("stats", sink.toJson(false));
    return doc.dump(2);
}

std::string
runSuiteDocument(const Suite &suite, const Machine &machine, int jobs)
{
    StatsRegistry sink;
    ScopedStatsSink scope(sink);
    EvaluateOptions options;
    options.jobs = jobs;
    SuiteReport base =
        evaluateSuite(suite, machine, Technique::ModuloOnly, options);
    SuiteReport full =
        evaluateSuite(suite, machine, Technique::Full, options);
    SuiteReport sel =
        evaluateSuite(suite, machine, Technique::Selective, options);
    return documentOf(base, {full, sel}, sink);
}

TEST_F(CompileCacheTest, SuiteDocumentsAreJobCountInvariant)
{
    Suite suite = makeSuite("171.swim");
    for (WorkloadLoop &wl : suite.loops) {
        wl.tripCount = std::min<int64_t>(wl.tripCount, 96);
        wl.invocations = std::max<int64_t>(1, wl.invocations / 4);
    }
    Machine machine = paperMachine();

    compileCacheClear();
    std::string serial = runSuiteDocument(suite, machine, 1);
    compileCacheClear();
    std::string parallel = runSuiteDocument(suite, machine, 8);
    EXPECT_EQ(serial, parallel);

    // Warm cache (no clear): the merged documents are still
    // byte-identical — hits replay the cold run's stats delta.
    std::string warm = runSuiteDocument(suite, machine, 8);
    EXPECT_EQ(serial, warm);

    // And with the cache off entirely.
    compileCacheSetEnabled(false);
    std::string uncached = runSuiteDocument(suite, machine, 8);
    compileCacheSetEnabled(true);
    EXPECT_EQ(serial, uncached);
}

TEST_F(CompileCacheTest, ResilientCompileReportIsJobCountInvariant)
{
    Module m = parseLirOrDie(kCacheSaxpy);
    Machine machine = paperMachine();
    for (Technique t : {Technique::Selective, Technique::ModuloOnly}) {
        ArrayTable serial_arrays = m.arrays;
        ResilientCompile serial = compileLoopResilient(
            m.loops[0], serial_arrays, machine, t, {}, 1);
        ArrayTable parallel_arrays = m.arrays;
        ResilientCompile parallel = compileLoopResilient(
            m.loops[0], parallel_arrays, machine, t, {}, 4);

        ASSERT_TRUE(serial.ok());
        ASSERT_TRUE(parallel.ok());
        EXPECT_EQ(serial.report.str(), parallel.report.str());
        EXPECT_EQ(jsonOfCompiledProgram(serial.program).dump(),
                  jsonOfCompiledProgram(parallel.program).dump());
        EXPECT_EQ(jsonOfCompileReport(serial.report).dump(),
                  jsonOfCompileReport(parallel.report).dump());
        EXPECT_EQ(serial_arrays.size(), parallel_arrays.size());
    }
}

} // anonymous namespace
} // namespace selvec
