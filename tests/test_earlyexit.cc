/**
 * @file
 * Tests for early-exit (while-style) loops: the paper's section 6
 * "loops with early exits" extension. Post-tested semantics: an
 * ExitIf with a nonzero condition makes its iteration the loop's
 * last. Software pipelines over-execute speculatively; stores of
 * iterations past the exit are suppressed exactly, and observable
 * state comes from the exiting replica.
 */

#include <gtest/gtest.h>

#include "analysis/depgraph.hh"
#include "core/itersplit.hh"
#include "core/transform.hh"
#include "driver/driver.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "vectorize/traditional.hh"

namespace selvec
{
namespace
{

const char *kFind = R"(
array A f64 300
array B f64 300
loop find {
    livein limit f64
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load A[i]
        s1 = fadd s x
        xx = fmul x x
        store B[i] = xx
        c = fcmplt limit x
        exitif c
    }
    liveout s1
}
)";

struct Prepared
{
    Module module;
    Machine machine = paperMachine();
    LiveEnv env;

    explicit Prepared(double limit)
    {
        module = parseLirOrDie(kFind);
        env["limit"] = RtVal::scalarF(limit);
        env["s0"] = RtVal::scalarF(0.0);
    }

    const Loop &loop() const { return module.loops.front(); }
};

TEST(EarlyExit, ComparisonSemantics)
{
    Module m = parseLirOrDie(R"(
array A i64 16
loop t {
    livein a i64
    livein b i64
    livein x f64
    livein y f64
    body {
        ci = icmplt a b
        cf = fcmplt x y
        store A[i] = ci
        store A[i + 8] = cf
    }
}
)");
    Machine machine = paperMachine();
    MemoryImage mem(m.arrays);
    LiveEnv env;
    env["a"] = RtVal::scalarI(3);
    env["b"] = RtVal::scalarI(5);
    env["x"] = RtVal::scalarF(2.0);
    env["y"] = RtVal::scalarF(-1.0);
    executeLoop(m.arrays, m.loops[0], machine, mem, env, 1);
    EXPECT_EQ(mem.loadI(0, 0), 1);
    EXPECT_EQ(mem.loadI(0, 8), 0);
}

TEST(EarlyExit, ReferenceStopsAtTheExit)
{
    Prepared p(20.0);
    MemoryImage mem(p.module.arrays);
    mem.fillPattern(71);
    // Plant a trigger at a known index.
    mem.storeF(0, 10, 25.0);
    for (int i = 0; i < 10; ++i)
        mem.storeF(0, i, 1.0);

    RunOutput out = executeLoop(p.module.arrays, p.loop(), p.machine,
                                mem, p.env, 100);
    EXPECT_TRUE(out.exited);
    EXPECT_EQ(out.exitOrig, 10);
    // Stores up to and including iteration 10 committed; iteration
    // 11's store suppressed.
    EXPECT_DOUBLE_EQ(mem.loadF(1, 10), 25.0 * 25.0);
    EXPECT_NE(mem.loadF(1, 11), mem.loadF(0, 11) * mem.loadF(0, 11));
    // The sum covers iterations 0..10.
    EXPECT_DOUBLE_EQ(out.liveOuts.at("s1").laneF(0), 10.0 + 25.0);
    EXPECT_DOUBLE_EQ(out.carriedFinal.at("s").laneF(0), 35.0);
}

TEST(EarlyExit, StoresStayScalarUnderVectorization)
{
    Prepared p(1.0);
    DepGraph graph(p.module.arrays, p.loop(), p.machine);
    VectAnalysis va =
        analyzeVectorizable(p.loop(), graph, p.machine);
    for (OpId op = 0; op < p.loop().numOps(); ++op) {
        if (p.loop().op(op).isStore()) {
            EXPECT_FALSE(va.vectorizable[static_cast<size_t>(op)]);
        }
    }
    // The load and the square are still fair game.
    EXPECT_TRUE(va.vectorizable[0]);
    EXPECT_TRUE(va.vectorizable[2]);
}

class ExitTechniques
    : public ::testing::TestWithParam<std::tuple<Technique, int>>
{
};

TEST_P(ExitTechniques, MatchesReferenceAtEveryPhase)
{
    Technique technique = std::get<0>(GetParam());
    int exit_at = std::get<1>(GetParam());

    Prepared p(20.0);
    ArrayTable arrays = p.module.arrays;
    CompiledProgram program =
        compileLoop(p.loop(), arrays, p.machine, technique);

    auto plant = [&](MemoryImage &mem) {
        mem.fillPattern(73);
        for (int i = 0; i < 120; ++i)
            mem.storeF(0, i, 0.5);
        if (exit_at >= 0)
            mem.storeF(0, exit_at, 30.0);
    };

    MemoryImage mem(arrays);
    plant(mem);
    ExecResult got =
        runCompiled(program, arrays, p.machine, mem, p.env, 100);

    MemoryImage ref(arrays);
    plant(ref);
    ExecResult want =
        runReference(p.loop(), arrays, p.machine, ref, p.env, 100);

    EXPECT_EQ(mem.diff(ref), "")
        << techniqueName(technique) << " exit@" << exit_at;
    ASSERT_TRUE(got.env.count("s1"));
    EXPECT_EQ(got.env.at("s1"), want.env.at("s1"))
        << techniqueName(technique) << " exit@" << exit_at;
    EXPECT_GT(got.cycles, 0);
}

std::string
exitName(const ::testing::TestParamInfo<std::tuple<Technique, int>>
             &info)
{
    int at = std::get<1>(info.param);
    return std::string(techniqueName(std::get<0>(info.param))) +
           (at < 0 ? "_noexit" : "_at" + std::to_string(at));
}

INSTANTIATE_TEST_SUITE_P(
    Phases, ExitTechniques,
    ::testing::Combine(
        ::testing::Values(Technique::ModuloOnly, Technique::Full,
                          Technique::Selective),
        // Even and odd exit points (both replica phases), an exit in
        // the cleanup region, the first iteration, and no exit at all
        // (-1: the loop runs to its bound and the cleanup runs).
        ::testing::Values(-1, 0, 1, 6, 7, 42, 99)),
    exitName);

TEST(EarlyExit, TraditionalDeclinesToDistribute)
{
    Prepared p(1.0);
    DistributedLoops dist = traditionalVectorize(
        p.loop(), p.module.arrays, p.machine, 512);
    EXPECT_FALSE(dist.distributed);
}

TEST(EarlyExit, IterationSplitRefuses)
{
    Prepared p(1.0);
    Machine aligned = paperMachine();
    aligned.alignment = AlignPolicy::AssumeAligned;
    DepGraph graph(p.module.arrays, p.loop(), aligned);
    VectAnalysis va = analyzeVectorizable(p.loop(), graph, aligned);
    IterSplitResult r = iterationSplit(p.loop(), p.module.arrays, va,
                                       aligned, 3);
    EXPECT_FALSE(r.ok);
}

TEST(EarlyExit, SchedulerOrdersStoresAfterExits)
{
    // The control edges force every store at least one exit-latency
    // behind the previous iteration's tests.
    Prepared p(1.0);
    DepGraph graph(p.module.arrays, p.loop(), p.machine);
    bool exit_to_store = false;
    for (const DepEdge &e : graph.edges()) {
        if (p.loop().op(e.src).opcode == Opcode::ExitIf &&
            p.loop().op(e.dst).isStore() && e.distance == 1) {
            exit_to_store = true;
        }
    }
    EXPECT_TRUE(exit_to_store);
}

TEST(EarlyExit, VerifierRejectsVectorStores)
{
    ParseResult pr = parseLir(R"(
array A f64 64
loop t cover 2 {
    livein k i64
    body {
        v = vload A[2i]
        vstore A[2i + 32] = v
        c = icmplt k k
        exitif c
    }
}
)");
    EXPECT_FALSE(pr.ok);
    EXPECT_NE(pr.error.find("early-exit"), std::string::npos);
}

TEST(EarlyExit, LirRoundTripWithLaneTables)
{
    Prepared p(1.0);
    DepGraph graph(p.module.arrays, p.loop(), p.machine);
    VectAnalysis va =
        analyzeVectorizable(p.loop(), graph, p.machine);
    Loop vec = transformLoop(p.loop(), p.module.arrays, va,
                             va.vectorizable, p.machine);
    ASSERT_FALSE(vec.liveOutLanes.empty());
    ASSERT_FALSE(vec.carriedUpdateLanes.empty());

    Module round;
    round.arrays = p.module.arrays;
    round.loops.push_back(vec);
    std::string text = writeLir(round);
    ParseResult pr = parseLir(text);
    ASSERT_TRUE(pr.ok) << pr.error << "\n" << text;
    const Loop &back = pr.module.loops.front();
    EXPECT_EQ(back.liveOutLanes, vec.liveOutLanes);
    EXPECT_EQ(back.carriedUpdateLanes.size(),
              vec.carriedUpdateLanes.size());
    EXPECT_TRUE(back.hasEarlyExit());
}

} // anonymous namespace
} // namespace selvec
