/**
 * @file
 * Unit tests for the LIR textual format: subscript grammar, deferred
 * bindings, round-tripping, and parse-error reporting.
 */

#include <gtest/gtest.h>

#include "lir/lir.hh"

namespace selvec
{
namespace
{

TEST(LirParse, MinimalLoop)
{
    ParseResult pr = parseLir(R"(
array A f64 64
loop t {
    body {
        a = load A[i]
        store A[i + 1] = a
    }
}
)");
    ASSERT_TRUE(pr.ok) << pr.error;
    ASSERT_EQ(pr.module.loops.size(), 1u);
    const Loop &loop = pr.module.loops.front();
    EXPECT_EQ(loop.numOps(), 2);
    EXPECT_EQ(loop.ops[0].ref.scale, 1);
    EXPECT_EQ(loop.ops[1].ref.offset, 1);
}

TEST(LirParse, SubscriptForms)
{
    ParseResult pr = parseLir(R"(
array A f64 4096
loop t {
    body {
        a = load A[i]
        b = load A[2i]
        c = load A[2i + 3]
        d = load A[i - 1]
        e = load A[5]
        f = load A[-1i + 40]
        s1 = fadd a b
        s2 = fadd c d
        s3 = fadd e f
        s4 = fadd s1 s2
        s5 = fadd s3 s4
        store A[3i + 7] = s5
    }
}
)");
    ASSERT_TRUE(pr.ok) << pr.error;
    const Loop &loop = pr.module.loops.front();
    EXPECT_EQ(loop.ops[0].ref.scale, 1);
    EXPECT_EQ(loop.ops[1].ref.scale, 2);
    EXPECT_EQ(loop.ops[2].ref.offset, 3);
    EXPECT_EQ(loop.ops[3].ref.offset, -1);
    EXPECT_EQ(loop.ops[4].ref.scale, 0);
    EXPECT_EQ(loop.ops[4].ref.offset, 5);
    EXPECT_EQ(loop.ops[5].ref.scale, -1);
    EXPECT_EQ(loop.ops[5].ref.offset, 40);
    EXPECT_EQ(loop.ops[11].ref.scale, 3);
    EXPECT_EQ(loop.ops[11].ref.offset, 7);
}

TEST(LirParse, CarriedUpdateDeferredBinding)
{
    ParseResult pr = parseLir(R"(
array A f64 64
loop t {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        a = load A[i]
        s1 = fadd s a
    }
    liveout s1
}
)");
    ASSERT_TRUE(pr.ok) << pr.error;
    const Loop &loop = pr.module.loops.front();
    ASSERT_EQ(loop.carried.size(), 1u);
    EXPECT_EQ(loop.valueInfo(loop.carried[0].update).name, "s1");
    EXPECT_EQ(loop.valueInfo(loop.carried[0].init).name, "s0");
}

TEST(LirParse, ArrayAttributes)
{
    ParseResult pr = parseLir(
        "array A f64 128 align 4 synthesized\narray B i64 64\n");
    ASSERT_TRUE(pr.ok) << pr.error;
    EXPECT_EQ(pr.module.arrays[0].baseAlign, 4);
    EXPECT_TRUE(pr.module.arrays[0].synthesized);
    EXPECT_EQ(pr.module.arrays[1].elemType, Type::I64);
    EXPECT_FALSE(pr.module.arrays[1].synthesized);
}

TEST(LirParse, VectorOpsAndAttributes)
{
    ParseResult pr = parseLir(R"(
array A f64 64
loop t cover 2 {
    livein c f64
    splatin cv c
    body {
        a = vload A[2i]
        b = vload A[2i + 8]
        m = vmerge a b shift 1
        p = vfmul m cv
        s = vpick p lane 1
        q = movvs p lane 0
        r = fadd s q
        ch = xfer.stores r
        g = xfer.loadv ch ch
        vstore A[2i + 16] = g
    }
}
)");
    ASSERT_TRUE(pr.ok) << pr.error;
    const Loop &loop = pr.module.loops.front();
    EXPECT_EQ(loop.coverage, 2);
    EXPECT_EQ(loop.splatIns.size(), 1u);
    EXPECT_EQ(loop.ops[2].lane, 1);
    EXPECT_EQ(loop.typeOf(loop.findValue("g")), Type::VF64);
}

TEST(LirParse, BrAsValueNameAndAsStatement)
{
    ParseResult pr = parseLir(R"(
array A f64 64
loop t {
    body {
        br = load A[i]
        store A[i + 1] = br
        br
        nop
    }
}
)");
    ASSERT_TRUE(pr.ok) << pr.error;
    const Loop &loop = pr.module.loops.front();
    EXPECT_EQ(loop.ops[2].opcode, Opcode::Br);
    EXPECT_EQ(loop.ops[3].opcode, Opcode::Nop);
}

TEST(LirParse, CommentsAndBlankLines)
{
    ParseResult pr = parseLir(R"(
# leading comment
array A f64 64   # trailing comment

loop t {
    body {
        # only a comment
        a = load A[i]   # another
        store A[i] = a
    }
}
)");
    EXPECT_TRUE(pr.ok) << pr.error;
}

struct BadCase
{
    const char *name;
    const char *text;
};

class LirErrors : public ::testing::TestWithParam<BadCase>
{
};

TEST_P(LirErrors, Rejected)
{
    ParseResult pr = parseLir(GetParam().text);
    EXPECT_FALSE(pr.ok);
    EXPECT_FALSE(pr.error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LirErrors,
    ::testing::Values(
        BadCase{"unknown_top", "frobnicate\n"},
        BadCase{"unknown_array",
                "loop t {\n body {\n a = load Z[i]\n }\n}\n"},
        BadCase{"dup_array", "array A f64 4\narray A f64 4\n"},
        BadCase{"bad_subscript",
                "array A f64 4\nloop t {\n body {\n a = load A[j]\n "
                "}\n}\n"},
        BadCase{"unterminated_loop", "array A f64 4\nloop t {\n"},
        BadCase{"unknown_value",
                "array A f64 4\nloop t {\n body {\n store A[i] = q\n "
                "}\n}\n"},
        BadCase{"dup_value",
                "array A f64 4\nloop t {\n body {\n a = load A[i]\n a "
                "= load A[i]\n store A[i] = a\n }\n}\n"},
        BadCase{"unbound_update",
                "array A f64 4\nloop t {\n livein s0 f64\n carried s "
                "f64 init s0 update szz\n body {\n a = load A[i]\n "
                "store A[i] = a\n }\n}\n"},
        BadCase{"bad_opcode",
                "array A f64 4\nloop t {\n body {\n a = load A[i]\n b "
                "= zmul a a\n store A[i] = b\n }\n}\n"},
        BadCase{"wrong_arity",
                "array A f64 4\nloop t {\n body {\n a = load A[i]\n b "
                "= fadd a\n store A[i] = b\n }\n}\n"},
        BadCase{"trailing_tokens", "array A f64 4 5 6\n"},
        BadCase{"bad_liveout",
                "array A f64 4\nloop t {\n liveout nope\n body {\n a "
                "= load A[i]\n store A[i] = a\n }\n}\n"},
        BadCase{"empty_input_loop", "loop t\n"},
        BadCase{"missing_equals",
                "array A f64 4\nloop t {\n body {\n a load A[i]\n "
                "}\n}\n"},
        BadCase{"bad_type", "array A f80 4\n"},
        BadCase{"bad_array_size", "array A f64 many\n"},
        BadCase{"bad_livein_type",
                "array A f64 4\nloop t {\n livein s0 f80\n body {\n a "
                "= load A[i]\n store A[i] = a\n }\n}\n"},
        BadCase{"bad_coverage",
                "array A f64 4\nloop t cover x {\n body {\n a = load "
                "A[i]\n store A[i] = a\n }\n}\n"},
        BadCase{"unterminated_body",
                "array A f64 4\nloop t {\n body {\n a = load A[i]\n"},
        BadCase{"bad_int_literal",
                "array A f64 4\nloop t {\n body {\n c = iconst ten\n "
                "store A[0] = c\n }\n}\n"},
        BadCase{"bad_float_literal",
                "array A f64 4\nloop t {\n body {\n c = fconst pi\n "
                "store A[0] = c\n }\n}\n"},
        BadCase{"self_use",
                "array A f64 4\nloop t {\n body {\n a = fadd a a\n "
                "store A[0] = a\n }\n}\n"},
        BadCase{"bad_subscript_scale",
                "array A f64 4\nloop t {\n body {\n a = load A[xi + "
                "1]\n store A[i] = a\n }\n}\n"},
        BadCase{"store_missing_value",
                "array A f64 4\nloop t {\n body {\n a = load A[i]\n "
                "store A[i] =\n }\n}\n"}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(LirErrors, MultipleDiagnosticsWithLineNumbers)
{
    // One file, three independent mistakes: the parser must report
    // all of them in one pass, each anchored to its line.
    ParseResult pr = parseLir(R"(array A f64 64
loop t {
    livein s0 f80
    body {
        a = load A[i]
        b = zmul a a
        c = fadd a
        store A[i] = a
    }
}
)");
    ASSERT_FALSE(pr.ok);
    ASSERT_GE(pr.diagnostics.size(), 3u) << pr.error;
    EXPECT_EQ(pr.diagnostics[0].line, 3);
    EXPECT_EQ(pr.diagnostics[1].line, 6);
    EXPECT_EQ(pr.diagnostics[2].line, 7);
    EXPECT_NE(pr.error.find("line 3"), std::string::npos) << pr.error;
    EXPECT_NE(pr.error.find("line 6"), std::string::npos) << pr.error;
    EXPECT_NE(pr.error.find("line 7"), std::string::npos) << pr.error;
}

TEST(LirErrors, RecoveryCrossesLoopBoundaries)
{
    // A malformed loop must not swallow the diagnostics of a later
    // loop in the same file.
    ParseResult pr = parseLir(R"(array A f64 64
loop broken {
    body {
        a = zmul a a
    }
}
loop alsobad {
    body {
        b = load A[j]
        store A[i] = b
    }
}
)");
    ASSERT_FALSE(pr.ok);
    ASSERT_GE(pr.diagnostics.size(), 2u) << pr.error;
    bool saw_first = false, saw_second = false;
    for (const ParseDiag &d : pr.diagnostics) {
        if (d.line == 4)
            saw_first = true;
        if (d.line == 9)
            saw_second = true;
    }
    EXPECT_TRUE(saw_first) << pr.error;
    EXPECT_TRUE(saw_second) << pr.error;
}

TEST(LirErrors, DiagnosticCountIsCapped)
{
    // A pathological file stops at kMaxParseDiags diagnostics rather
    // than producing one per line forever.
    std::string text = "array A f64 64\nloop t {\n body {\n";
    for (int i = 0; i < 200; ++i)
        text += " v" + std::to_string(i) + " = zmul x y\n";
    text += " }\n}\n";
    ParseResult pr = parseLir(text);
    ASSERT_FALSE(pr.ok);
    EXPECT_EQ(pr.diagnostics.size(), kMaxParseDiags);
    EXPECT_NE(pr.diagnostics.back().message.find("giving up"),
              std::string::npos);
}

TEST(LirWrite, RoundTripPreservesStructure)
{
    const char *text = R"(
array X f64 300
array Y f64 300 align 4
array T f64 64 synthesized

loop work cover 2 {
    livein c f64
    livein s0 f64
    carried s f64 init s0 update s1
    splatin cv c
    preload pv vload X[2i + 2]
    carried prev vf64 init pv update a
    body {
        a = vload X[2i + 4]
        m = vmerge prev a shift 1
        b = load Y[2i + 1]
        b2 = load Y[2i + 3]
        t = fmul b c
        t2 = fmul b2 c
        ch0 = xfer.stores t
        ch1 = xfer.stores t2
        g = xfer.loadv ch0 ch1
        p = vfadd m g
        vstore T[2i] = p
        s1 = fadd s t
    }
    poststore X[2i - 1] = s1
    liveout s1
}
)";
    ParseResult first = parseLir(text);
    ASSERT_TRUE(first.ok) << first.error;
    std::string emitted = writeLir(first.module);
    ParseResult second = parseLir(emitted);
    ASSERT_TRUE(second.ok) << second.error << "\n" << emitted;

    const Loop &a = first.module.loops.front();
    const Loop &b = second.module.loops.front();
    ASSERT_EQ(a.numOps(), b.numOps());
    for (OpId i = 0; i < a.numOps(); ++i) {
        EXPECT_EQ(a.op(i).opcode, b.op(i).opcode) << "op " << i;
        EXPECT_EQ(a.op(i).ref.scale, b.op(i).ref.scale);
        EXPECT_EQ(a.op(i).ref.offset, b.op(i).ref.offset);
        EXPECT_EQ(a.op(i).lane, b.op(i).lane);
        EXPECT_EQ(a.op(i).srcs.size(), b.op(i).srcs.size());
    }
    EXPECT_EQ(a.carried.size(), b.carried.size());
    EXPECT_EQ(a.preloads.size(), b.preloads.size());
    EXPECT_EQ(a.poststores.size(), b.poststores.size());
    EXPECT_EQ(a.splatIns.size(), b.splatIns.size());
    EXPECT_EQ(a.coverage, b.coverage);
    EXPECT_EQ(first.module.arrays.size(), second.module.arrays.size());
    EXPECT_EQ(second.module.arrays[1].baseAlign, 4);
    EXPECT_TRUE(second.module.arrays[2].synthesized);
}

TEST(LirWrite, ConstantsRoundTrip)
{
    const char *text = R"(
array A f64 8
loop t {
    body {
        c = iconst -42
        f = fconst 2.5
        g = fconst -0.125
        store A[0] = f
        store A[1] = g
        ic = imov c
        s = iadd c ic
        store A[2] = f
    }
    liveout s
}
)";
    ParseResult first = parseLir(text);
    ASSERT_TRUE(first.ok) << first.error;
    ParseResult second = parseLir(writeLir(first.module));
    ASSERT_TRUE(second.ok) << second.error;
    const Loop &loop = second.module.loops.front();
    EXPECT_EQ(loop.ops[0].iimm, -42);
    EXPECT_DOUBLE_EQ(loop.ops[1].fimm, 2.5);
    EXPECT_DOUBLE_EQ(loop.ops[2].fimm, -0.125);
}

} // anonymous namespace
} // namespace selvec
