/**
 * @file
 * Hot-path contract tests (ctest label `hotpath`, DESIGN.md §9):
 *
 *  - randomized property: after arbitrary testSwitch/commitSwitch
 *    sequences over generated loops, the incrementally maintained
 *    cost-model state (bins, high-water mark, squared sum) equals a
 *    fresh rebuild of the same partition — with the
 *    SELVEC_CHECK_INCREMENTAL cross-check armed, so every commit also
 *    self-verifies ledgers and transfer directions;
 *  - testSwitch restores its checkpoint exactly;
 *  - moduloSchedule produces identical schedules with the cross-check
 *    mode on and off (the mode additionally asserts, per placement,
 *    that the ready heap matches a priority scan and the MRT masks
 *    match the cells);
 *  - steady-state testSwitch/commitSwitch perform zero heap
 *    allocations.
 *
 * This binary overrides the global operator new to count allocations,
 * which is why these tests live apart from selvec_tests.
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "analysis/depgraph.hh"
#include "analysis/vectorizable.hh"
#include "core/costmodel.hh"
#include "core/partition.hh"
#include "machine/machine.hh"
#include "pipeline/lowering.hh"
#include "pipeline/modsched.hh"
#include "support/checkmode.hh"
#include "support/random.hh"
#include "workloads/generator.hh"

namespace
{

std::atomic<uint64_t> g_allocations{0};

} // anonymous namespace

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace selvec;

struct TestLoop
{
    GeneratedLoop gen;
    VectAnalysis va;
    std::vector<OpId> candidates;

    explicit TestLoop(uint64_t seed, int ops, const Machine &machine)
    {
        Rng rng(seed);
        GeneratorOptions options;
        options.minOps = ops;
        options.maxOps = ops;
        gen = generateLoop(rng, options);
        DepGraph graph(gen.module.arrays, gen.loop(), machine);
        va = analyzeVectorizable(gen.loop(), graph, machine);
        for (OpId op = 0; op < gen.loop().numOps(); ++op) {
            if (va.vectorizable[static_cast<size_t>(op)])
                candidates.push_back(op);
        }
    }
};

void
expectBinsEqual(const ReservationBins &a, const ReservationBins &b)
{
    ASSERT_EQ(a.numBins(), b.numBins());
    for (int u = 0; u < a.numBins(); ++u)
        EXPECT_EQ(a.weight(u), b.weight(u)) << "unit " << u;
    EXPECT_EQ(a.highWaterMark(), b.highWaterMark());
    EXPECT_EQ(a.sumSquares(), b.sumSquares());
}

TEST(Hotpath, IncrementalStateMatchesRebuildAfterRandomMoves)
{
    Machine machine = paperMachine();
    setCheckIncremental(true);
    for (uint64_t seed : {11u, 23u, 47u, 91u}) {
        TestLoop tl(0xB00000u ^ (seed * 7919u), 24, machine);
        if (tl.candidates.empty())
            continue;
        PartitionCostModel model(tl.gen.loop(), tl.va, machine);

        Rng rng(seed);
        for (int step = 0; step < 200; ++step) {
            OpId op = tl.candidates[static_cast<size_t>(rng.range(
                0, static_cast<int64_t>(tl.candidates.size()) - 1))];
            if (rng.chance(0.7)) {
                model.testSwitch(op);
            } else {
                // Self-verifies against a fresh rebuild (check mode).
                model.commitSwitch(op);
            }
            if (step % 25 == 0) {
                PartitionCostModel fresh(tl.gen.loop(), tl.va,
                                         machine);
                fresh.rebuild(model.partition());
                expectBinsEqual(model.binsRef(), fresh.binsRef());
                EXPECT_EQ(model.cost(), fresh.cost());
            }
        }
    }
    setCheckIncremental(false);
}

TEST(Hotpath, TestSwitchRestoresCheckpointExactly)
{
    Machine machine = paperMachine();
    for (uint64_t seed : {5u, 17u}) {
        TestLoop tl(0xC0FFEEu + seed, 20, machine);
        if (tl.candidates.empty())
            continue;
        PartitionCostModel model(tl.gen.loop(), tl.va, machine);
        PartitionCostModel witness(tl.gen.loop(), tl.va, machine);
        for (OpId op : tl.candidates) {
            model.testSwitch(op);
            expectBinsEqual(model.binsRef(), witness.binsRef());
        }
    }
}

TEST(Hotpath, ModuloScheduleUnchangedUnderCheckMode)
{
    Machine machine = paperMachine();
    for (int ops : {8, 24, 48}) {
        Rng rng(0x5C4ED0u + static_cast<uint64_t>(ops));
        GeneratorOptions options;
        options.minOps = ops;
        options.maxOps = ops;
        GeneratedLoop g = generateLoop(rng, options);
        Loop lowered = lowerForScheduling(g.loop(), machine);
        DepGraph graph(g.module.arrays, lowered, machine);

        setCheckIncremental(false);
        ScheduleResult fast = moduloSchedule(lowered, graph, machine);
        setCheckIncremental(true);
        ScheduleResult checked =
            moduloSchedule(lowered, graph, machine);
        setCheckIncremental(false);

        ASSERT_EQ(fast.ok, checked.ok);
        EXPECT_EQ(fast.schedule.ii, checked.schedule.ii);
        EXPECT_EQ(fast.schedule.time, checked.schedule.time);
        EXPECT_EQ(fast.attempts, checked.attempts);
        EXPECT_EQ(fast.backtracks, checked.backtracks);
        EXPECT_EQ(fast.placements, checked.placements);
        EXPECT_EQ(fast.readyPushes, checked.readyPushes);
        EXPECT_EQ(fast.maskHits, checked.maskHits);
    }
}

TEST(Hotpath, PartitionerIsDeterministicUnderCheckMode)
{
    Machine machine = paperMachine();
    TestLoop tl(0xDE7E12u, 28, machine);
    setCheckIncremental(false);
    PartitionResult fast = partitionOps(tl.gen.loop(), tl.va, machine);
    setCheckIncremental(true);
    PartitionResult checked =
        partitionOps(tl.gen.loop(), tl.va, machine);
    setCheckIncremental(false);
    EXPECT_EQ(fast.vectorize, checked.vectorize);
    EXPECT_EQ(fast.bestCost, checked.bestCost);
    EXPECT_EQ(fast.movesEvaluated, checked.movesEvaluated);
    EXPECT_EQ(fast.movesCommitted, checked.movesCommitted);
}

TEST(Hotpath, SteadyStateMovesAllocateNothing)
{
    Machine machine = paperMachine();
    TestLoop tl(0xA110Cu, 24, machine);
    ASSERT_FALSE(tl.candidates.empty());
    setCheckIncremental(false);
    PartitionCostModel model(tl.gen.loop(), tl.va, machine);

    // One full sequence: probe every candidate, then commit each once.
    // Running it twice returns every op to its starting side, so the
    // measured pass retraces the warm pass exactly — every scratch
    // vector, ledger and histogram has already reached its high-water
    // capacity.
    auto sequence = [&] {
        for (OpId commit_op : tl.candidates) {
            for (OpId op : tl.candidates)
                model.testSwitch(op);
            model.commitSwitch(commit_op);
        }
    };
    sequence();
    sequence();

    uint64_t before = g_allocations.load(std::memory_order_relaxed);
    sequence();
    sequence();
    uint64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(before, after)
        << "testSwitch/commitSwitch allocated in steady state";
}

} // anonymous namespace
