/**
 * @file
 * Integration tests over the nine SPEC-FP-analog suites: every kernel
 * of every suite compiles under every technique and matches the
 * reference interpreter bit-for-bit (evaluateSuite fatals otherwise),
 * and the headline Table 2 orderings hold.
 */

#include <gtest/gtest.h>

#include "driver/evaluate.hh"
#include "machine/machine.hh"
#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace selvec
{
namespace
{

TEST(Workloads, NineSuitesExist)
{
    EXPECT_EQ(suiteNames().size(), 9u);
    for (const std::string &name : suiteNames()) {
        Suite suite = makeSuite(name);
        EXPECT_EQ(suite.name, name);
        EXPECT_FALSE(suite.loops.empty()) << name;
        EXPECT_FALSE(suite.description.empty()) << name;
        for (const WorkloadLoop &wl : suite.loops) {
            EXPECT_GT(wl.tripCount, 0);
            EXPECT_GT(wl.invocations, 0);
            EXPECT_LT(wl.loopIndex,
                      static_cast<int>(suite.module.loops.size()));
        }
    }
}

TEST(Workloads, UnknownSuiteDies)
{
    EXPECT_DEATH(makeSuite("999.bogus"), "unknown suite");
}

class SuiteTechniques
    : public ::testing::TestWithParam<std::tuple<int, Technique>>
{
};

TEST_P(SuiteTechniques, VerifiesAgainstReference)
{
    const std::string &name =
        suiteNames()[static_cast<size_t>(std::get<0>(GetParam()))];
    Technique technique = std::get<1>(GetParam());
    Suite suite = makeSuite(name);
    Machine machine = paperMachine();

    // evaluateSuite() fatals on any memory or live-out divergence.
    EvaluateOptions options;
    options.verify = true;
    SuiteReport report =
        evaluateSuite(suite, machine, technique, options);
    EXPECT_GT(report.totalCycles, 0);
    EXPECT_EQ(report.loops.size(), suite.loops.size());
}

std::string
suiteTechName(
    const ::testing::TestParamInfo<std::tuple<int, Technique>> &info)
{
    std::string suite = suiteNames()[static_cast<size_t>(
        std::get<0>(info.param))];
    for (char &ch : suite) {
        if (ch == '.')
            ch = '_';
    }
    return suite + "_" + techniqueName(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    All, SuiteTechniques,
    ::testing::Combine(
        ::testing::Range(0, 9),
        ::testing::Values(Technique::ModuloOnly, Technique::Traditional,
                          Technique::Full, Technique::Selective)),
    suiteTechName);

TEST(Workloads, Table2OrderingHolds)
{
    // The paper's qualitative result: traditional <= full on every
    // suite, and selective is the best technique on all but turb3d.
    Machine machine = paperMachine();
    for (const std::string &name : suiteNames()) {
        Suite suite = makeSuite(name);
        SuiteReport base =
            evaluateSuite(suite, machine, Technique::ModuloOnly);
        double trad = speedupOver(
            base, evaluateSuite(suite, machine,
                                Technique::Traditional));
        double full = speedupOver(
            base, evaluateSuite(suite, machine, Technique::Full));
        double sel = speedupOver(
            base, evaluateSuite(suite, machine, Technique::Selective));

        EXPECT_LE(trad, full + 0.02) << name;
        EXPECT_GE(sel, full - 0.02) << name;
        EXPECT_GE(sel, trad - 0.02) << name;
    }
}

TEST(Workloads, TomcatvIsTheBigSelectiveWin)
{
    Machine machine = paperMachine();
    Suite suite = makeSuite("101.tomcatv");
    SuiteReport base =
        evaluateSuite(suite, machine, Technique::ModuloOnly);
    SuiteReport sel =
        evaluateSuite(suite, machine, Technique::Selective);
    EXPECT_GE(speedupOver(base, sel), 1.3);
}

TEST(Workloads, Turb3dSelectiveDoesNotWin)
{
    // Low trip counts: prologue/epilogue eat the II gains.
    Machine machine = paperMachine();
    Suite suite = makeSuite("125.turb3d");
    SuiteReport base =
        evaluateSuite(suite, machine, Technique::ModuloOnly);
    SuiteReport sel =
        evaluateSuite(suite, machine, Technique::Selective);
    EXPECT_LE(speedupOver(base, sel), 1.0);
}

TEST(Workloads, GeneratorIsDeterministic)
{
    Rng a(99), b(99);
    GeneratedLoop ga = generateLoop(a);
    GeneratedLoop gb = generateLoop(b);
    EXPECT_EQ(ga.loop().numOps(), gb.loop().numOps());
    for (OpId i = 0; i < ga.loop().numOps(); ++i)
        EXPECT_EQ(ga.loop().op(i).opcode, gb.loop().op(i).opcode);
}

} // anonymous namespace
} // namespace selvec
