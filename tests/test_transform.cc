/**
 * @file
 * Unit tests for the loop transformer (section 3.3): unrolling,
 * vector opcode substitution, transfer insertion, misalignment
 * lowering and live-out naming. Functional equivalence is checked by
 * executing the transformed loop against the reference interpreter.
 */

#include <gtest/gtest.h>

#include "analysis/depgraph.hh"
#include "core/transform.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "sim/executor.hh"
#include "support/logging.hh"

namespace selvec
{
namespace
{

struct Ctx
{
    Module module;
    Machine machine;
    VectAnalysis va;

    Ctx(const char *text, Machine m) : machine(std::move(m))
    {
        ParseResult pr = parseLir(text);
        EXPECT_TRUE(pr.ok) << pr.error;
        module = std::move(pr.module);
        DepGraph graph(module.arrays, module.loops[0], machine);
        va = analyzeVectorizable(module.loops[0], graph, machine);
    }

    const Loop &loop() const { return module.loops.front(); }

    std::vector<bool>
    partitionAll() const
    {
        return va.vectorizable;
    }

    /** Run original (reference) and transformed over n iterations of
     *  the transformed loop's coverage and compare memory. */
    void
    expectEquivalent(const Loop &transformed, int64_t n_orig,
                     const LiveEnv &env)
    {
        ASSERT_EQ(n_orig % transformed.coverage, 0)
            << "test harness wants whole body iterations";
        MemoryImage ref(module.arrays);
        ref.fillPattern(99);
        executeLoop(module.arrays, loop(), machine, ref, env, n_orig);

        MemoryImage got(module.arrays);
        got.fillPattern(99);
        executeLoop(module.arrays, transformed, machine, got, env,
                    n_orig / transformed.coverage);

        EXPECT_EQ(got.diff(ref), "");
    }
};

const char *kSaxpy = R"(
array X f64 300
array Y f64 300
loop saxpy {
    livein a f64
    body {
        x = load X[i]
        y = load Y[i]
        ax = fmul a x
        s = fadd ax y
        store Y[i] = s
    }
}
)";

TEST(Transform, UnrollDoublesCoverageAndOps)
{
    Ctx c(kSaxpy, paperMachine());
    Loop unrolled = unrollLoop(c.loop(), c.module.arrays, c.machine);
    EXPECT_EQ(unrolled.coverage, 2);
    EXPECT_EQ(unrolled.numOps(), 2 * c.loop().numOps());
    // Replica refs: scale doubles, offsets split by replica.
    EXPECT_EQ(unrolled.ops[0].ref.scale, 2);
}

TEST(Transform, UnrollEquivalence)
{
    Ctx c(kSaxpy, paperMachine());
    Loop unrolled = unrollLoop(c.loop(), c.module.arrays, c.machine);
    LiveEnv env;
    env["a"] = RtVal::scalarF(1.5);
    c.expectEquivalent(unrolled, 64, env);
}

TEST(Transform, FullVectorSubstitutesOpcodes)
{
    Machine aligned = paperMachine();
    aligned.alignment = AlignPolicy::AssumeAligned;
    Ctx c(kSaxpy, aligned);
    Loop vec = transformLoop(c.loop(), c.module.arrays, c.va,
                             c.partitionAll(), c.machine);
    int vloads = 0, vstores = 0, vfmul = 0, vfadd = 0, splats = 0;
    for (const Operation &op : vec.ops) {
        vloads += op.opcode == Opcode::VLoad;
        vstores += op.opcode == Opcode::VStore;
        vfmul += op.opcode == Opcode::VFMul;
        vfadd += op.opcode == Opcode::VFAdd;
    }
    splats = static_cast<int>(vec.splatIns.size());
    EXPECT_EQ(vloads, 2);
    EXPECT_EQ(vstores, 1);
    EXPECT_EQ(vfmul, 1);
    EXPECT_EQ(vfadd, 1);
    EXPECT_EQ(splats, 1);   // the loop-invariant 'a'
    EXPECT_EQ(vec.numOps(), 5);
}

TEST(Transform, FullVectorEquivalenceAligned)
{
    Machine aligned = paperMachine();
    aligned.alignment = AlignPolicy::AssumeAligned;
    Ctx c(kSaxpy, aligned);
    Loop vec = transformLoop(c.loop(), c.module.arrays, c.va,
                             c.partitionAll(), aligned);
    LiveEnv env;
    env["a"] = RtVal::scalarF(-0.75);
    c.expectEquivalent(vec, 64, env);
}

TEST(Transform, MisalignedLoadUsesMergeAndPreload)
{
    Ctx c(kSaxpy, paperMachine());
    Loop vec = transformLoop(c.loop(), c.module.arrays, c.va,
                             c.partitionAll(), c.machine);
    int merges = 0;
    for (const Operation &op : vec.ops)
        merges += op.opcode == Opcode::VMerge;
    // Two loads + one store, each with a merge.
    EXPECT_EQ(merges, 3);
    EXPECT_EQ(vec.preloads.size(), 3u);
    // Extra carried chains for the reuse registers.
    EXPECT_EQ(vec.carried.size(), 3u);
}

class MisalignedOffsets : public ::testing::TestWithParam<int>
{
};

TEST_P(MisalignedOffsets, LoadStoreEquivalence)
{
    int offset = GetParam();
    std::string text = strfmt(R"(
array X f64 300
array Y f64 300
loop t {
    livein a f64
    body {
        x = load X[i + %d]
        ax = fmul a x
        store Y[i + %d] = ax
    }
}
)",
                              offset, offset + 1);
    Ctx c(text.c_str(), paperMachine());
    Loop vec = transformLoop(c.loop(), c.module.arrays, c.va,
                             c.partitionAll(), c.machine);
    LiveEnv env;
    env["a"] = RtVal::scalarF(2.25);
    c.expectEquivalent(vec, 64, env);
}

INSTANTIATE_TEST_SUITE_P(Phases, MisalignedOffsets,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Transform, PartialPartitionInsertsTransfersOnce)
{
    Ctx c(kSaxpy, paperMachine());
    // Vectorize only the multiply: x crosses in, ax crosses out.
    std::vector<bool> part(static_cast<size_t>(c.loop().numOps()),
                           false);
    part[2] = true;   // ax = fmul a x
    Loop mixed = transformLoop(c.loop(), c.module.arrays, c.va, part,
                               c.machine);

    int s_stores = 0, v_loads = 0, v_stores = 0, s_loads = 0;
    for (const Operation &op : mixed.ops) {
        s_stores += op.opcode == Opcode::XferStoreS;
        v_loads += op.opcode == Opcode::XferLoadV;
        v_stores += op.opcode == Opcode::XferStoreV;
        s_loads += op.opcode == Opcode::XferLoadS;
    }
    EXPECT_EQ(s_stores, 2);   // x lanes in
    EXPECT_EQ(v_loads, 1);
    EXPECT_EQ(v_stores, 1);   // ax out, exactly once
    EXPECT_EQ(s_loads, 2);

    LiveEnv env;
    env["a"] = RtVal::scalarF(0.5);
    c.expectEquivalent(mixed, 64, env);
}

TEST(Transform, CarriedChainThreadsThroughReplicas)
{
    const char *text = R"(
array X f64 300
loop t {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        s1 = fadd s x
        store X[i] = s1
    }
    liveout s1
}
)";
    Ctx c(text, paperMachine());
    Loop unrolled = unrollLoop(c.loop(), c.module.arrays, c.machine);

    LiveEnv env;
    env["s0"] = RtVal::scalarF(0.25);
    c.expectEquivalent(unrolled, 64, env);

    // The carried chain survives with its name and live-out naming.
    ASSERT_EQ(unrolled.carried.size(), 1u);
    EXPECT_EQ(unrolled.valueInfo(unrolled.carried[0].in).name, "s");
    ASSERT_EQ(unrolled.liveOuts.size(), 1u);
    EXPECT_EQ(unrolled.valueInfo(unrolled.liveOuts[0]).name, "s1");
}

TEST(Transform, LiveOutOfVectorizedValueExtractsLastLane)
{
    const char *text = R"(
array X f64 300
loop t {
    body {
        x = load X[i]
        y = fneg x
        store X[i] = y
    }
    liveout y
}
)";
    Machine mach = paperMachine();
    Ctx c(text, mach);
    Loop vec = transformLoop(c.loop(), c.module.arrays, c.va,
                             c.partitionAll(), mach);

    MemoryImage ref(c.module.arrays);
    ref.fillPattern(5);
    RunOutput r = executeLoop(c.module.arrays, c.loop(), mach, ref, {},
                              64);
    MemoryImage got(c.module.arrays);
    got.fillPattern(5);
    RunOutput g = executeLoop(c.module.arrays, vec, mach, got, {}, 32);
    ASSERT_TRUE(g.liveOuts.count("y"));
    EXPECT_EQ(g.liveOuts.at("y"), r.liveOuts.at("y"));
}

TEST(Transform, DistanceVlCycleVectorizes)
{
    // a[i+4] = a[i] * c: vectorizable despite the carried memory
    // cycle (distance 4 >= VL).
    const char *text = R"(
array A f64 300
loop t {
    livein cc f64
    body {
        x = load A[i]
        y = fmul x cc
        store A[i + 4] = y
    }
}
)";
    Ctx c(text, paperMachine());
    EXPECT_TRUE(c.va.vectorizable[0]);
    Loop vec = transformLoop(c.loop(), c.module.arrays, c.va,
                             c.partitionAll(), c.machine);
    LiveEnv env;
    env["cc"] = RtVal::scalarF(0.5);
    c.expectEquivalent(vec, 64, env);
}

TEST(Transform, RejectsNonFrontendInput)
{
    Ctx c(kSaxpy, paperMachine());
    Loop vec = transformLoop(c.loop(), c.module.arrays, c.va,
                             c.partitionAll(), c.machine);
    // Transforming an already-transformed loop (with preloads) dies.
    DepGraph graph(c.module.arrays, vec, c.machine);
    VectAnalysis va2 =
        analyzeVectorizable(vec, graph, c.machine);
    std::vector<bool> none(static_cast<size_t>(vec.numOps()), false);
    EXPECT_DEATH(
        transformLoop(vec, c.module.arrays, va2, none, c.machine),
        "frontend");
}

TEST(Transform, IntegerLoopVectorizes)
{
    const char *text = R"(
array A i64 300
array B i64 300
loop t {
    livein k i64
    body {
        x = load A[i]
        y = iadd x k
        z = ishl y k
        store B[i] = z
    }
}
)";
    Ctx c(text, paperMachine());
    Loop vec = transformLoop(c.loop(), c.module.arrays, c.va,
                             c.partitionAll(), c.machine);
    LiveEnv env;
    env["k"] = RtVal::scalarI(3);
    c.expectEquivalent(vec, 64, env);

    bool has_viadd = false;
    for (const Operation &op : vec.ops)
        has_viadd = has_viadd || op.opcode == Opcode::VIAdd;
    EXPECT_TRUE(has_viadd);
}

} // anonymous namespace
} // namespace selvec
