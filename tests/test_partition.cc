/**
 * @file
 * Unit tests for the selective-vectorization cost model and the
 * Kernighan-Lin partitioner (the paper's Figure 2).
 */

#include <gtest/gtest.h>

#include "analysis/depgraph.hh"
#include "core/comm.hh"
#include "core/costmodel.hh"
#include "core/partition.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"

namespace selvec
{
namespace
{

struct Analyzed
{
    Module module;
    Machine machine;
    VectAnalysis va;

    Analyzed(const char *text, Machine m) : machine(std::move(m))
    {
        ParseResult pr = parseLir(text);
        EXPECT_TRUE(pr.ok) << pr.error;
        module = std::move(pr.module);
        DepGraph graph(module.arrays, module.loops[0], machine);
        va = analyzeVectorizable(module.loops[0], graph, machine);
    }

    const Loop &loop() const { return module.loops.front(); }
};

const char *kDot = R"(
array X f64 256
array Y f64 256
loop dot {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        y = load Y[i]
        t = fmul x y
        s1 = fadd s t
    }
    liveout s1
}
)";

// ----------------------------------------------------------------- comm

TEST(CommPlan, NoCrossingNoTransfers)
{
    Analyzed a(kDot, toyMachine());
    DefUse du(a.loop());
    std::vector<bool> all_scalar(4, false);
    auto plan = planTransfers(a.loop(), du, all_scalar);
    for (XferDir d : plan)
        EXPECT_EQ(d, XferDir::None);
}

TEST(CommPlan, VectorDefScalarUse)
{
    Analyzed a(kDot, toyMachine());
    DefUse du(a.loop());
    // Vectorize the multiply only: t crosses vector->scalar; x and y
    // cross scalar->vector.
    std::vector<bool> part = {false, false, true, false};
    auto plan = planTransfers(a.loop(), du, part);
    ValueId x = a.loop().findValue("x");
    ValueId t = a.loop().findValue("t");
    EXPECT_EQ(plan[static_cast<size_t>(x)], XferDir::ScalarToVector);
    EXPECT_EQ(plan[static_cast<size_t>(t)], XferDir::VectorToScalar);
}

TEST(CommPlan, LiveInsAreFree)
{
    Analyzed a(R"(
array A f64 256
loop t {
    livein c f64
    body {
        x = load A[i]
        y = fmul x c
        store A[i + 1] = y
    }
}
)",
               paperMachine());
    DefUse du(a.loop());
    std::vector<bool> part = {false, true, false};
    auto plan = planTransfers(a.loop(), du, part);
    ValueId c = a.loop().findValue("c");
    EXPECT_EQ(plan[static_cast<size_t>(c)], XferDir::None);
}

TEST(CommPlan, VectorizedLiveOutNeedsExtraction)
{
    Analyzed a(R"(
array A f64 256
loop t {
    body {
        x = load A[i]
        y = fneg x
        store A[i + 1] = y
    }
    liveout y
}
)",
               paperMachine());
    DefUse du(a.loop());
    std::vector<bool> part = {true, true, true};
    auto plan = planTransfers(a.loop(), du, part);
    ValueId y = a.loop().findValue("y");
    EXPECT_EQ(plan[static_cast<size_t>(y)], XferDir::VectorToScalar);
}

TEST(CommPlan, TransferOpcodesMatchModel)
{
    Machine through = paperMachine();
    auto s2v = transferOpcodes(XferDir::ScalarToVector, through);
    ASSERT_EQ(s2v.size(), 3u);   // VL stores + 1 vector load
    EXPECT_EQ(s2v[0], Opcode::XferStoreS);
    EXPECT_EQ(s2v[2], Opcode::XferLoadV);

    auto v2s = transferOpcodes(XferDir::VectorToScalar, through);
    ASSERT_EQ(v2s.size(), 3u);
    EXPECT_EQ(v2s[0], Opcode::XferStoreV);

    Machine direct = directMoveMachine();
    EXPECT_EQ(transferOpcodes(XferDir::ScalarToVector, direct).size(),
              2u);

    Machine free = toyMachine();
    EXPECT_TRUE(transferOpcodes(XferDir::ScalarToVector, free).empty());
}

// ------------------------------------------------------------ costmodel

TEST(CostModel, AllScalarMatchesReplicatedPack)
{
    Analyzed a(kDot, paperMachine());
    PartitionCostModel model(a.loop(), a.va, a.machine);
    std::vector<bool> none(4, false);
    model.rebuild(none);

    // Hand-packed: every op twice, plus IAdd + Br overhead.
    std::vector<Opcode> bag;
    for (const Operation &op : a.loop().ops) {
        bag.push_back(op.opcode);
        bag.push_back(op.opcode);
    }
    bag.push_back(Opcode::IAdd);
    bag.push_back(Opcode::Br);
    EXPECT_EQ(model.cost(), packedHighWater(a.machine, bag));
}

TEST(CostModel, TestSwitchMatchesCommit)
{
    Analyzed a(kDot, paperMachine());
    for (OpId op = 0; op < 3; ++op) {
        PartitionCostModel model(a.loop(), a.va, a.machine);
        std::vector<bool> none(4, false);
        model.rebuild(none);
        int64_t before = model.cost();
        int64_t probe = model.testSwitch(op);
        // The probe must not disturb the bins.
        EXPECT_EQ(model.cost(), before);
        model.commitSwitch(op);
        // A fresh pack may do slightly better than the incremental
        // probe, never worse.
        EXPECT_LE(model.cost(), probe);
    }
}

TEST(CostModel, TestSwitchIsInvolution)
{
    Analyzed a(kDot, paperMachine());
    PartitionCostModel model(a.loop(), a.va, a.machine);
    std::vector<bool> part = {true, false, false, false};
    model.rebuild(part);
    int64_t c1 = model.testSwitch(2);
    int64_t c2 = model.testSwitch(2);
    EXPECT_EQ(c1, c2);
}

TEST(CostModel, MisalignmentAddsMerges)
{
    Analyzed a(kDot, paperMachine());
    PartitionCostModel model(a.loop(), a.va, a.machine);
    auto bag = model.opcodesFor(0, true);   // vectorized load
    ASSERT_EQ(bag.size(), 2u);
    EXPECT_EQ(bag[0], Opcode::VLoad);
    EXPECT_EQ(bag[1], Opcode::VMerge);

    Machine aligned = paperMachine();
    aligned.alignment = AlignPolicy::AssumeAligned;
    Analyzed b(kDot, aligned);
    PartitionCostModel amodel(b.loop(), b.va, aligned);
    EXPECT_EQ(amodel.opcodesFor(0, true).size(), 1u);
}

TEST(CostModel, ScalarSideReplicatesVlTimes)
{
    Analyzed a(kDot, paperMachine());
    PartitionCostModel model(a.loop(), a.va, a.machine);
    auto bag = model.opcodesFor(2, false);
    ASSERT_EQ(bag.size(), 2u);   // VL = 2 copies
    EXPECT_EQ(bag[0], Opcode::FMul);
}

// ------------------------------------------------------------ partition

TEST(Partition, Figure1SelectsLoadAndMultiply)
{
    Analyzed a(kDot, toyMachine());
    PartitionResult pr = partitionOps(a.loop(), a.va, a.machine);
    EXPECT_EQ(pr.bestCost, 2);        // II 1.0 over two iterations
    EXPECT_EQ(pr.allScalarCost, 3);   // unrolled baseline
    EXPECT_TRUE(pr.anyVector());
    // The reduction add can never be vectorized.
    EXPECT_FALSE(pr.vectorize[3]);
    // Exactly two of the three candidates go vector (one load stays
    // scalar to fill the third slot - the paper's punchline).
    int count = 0;
    for (bool b : pr.vectorize)
        count += b ? 1 : 0;
    EXPECT_EQ(count, 2);
}

TEST(Partition, NeverWorseThanAllScalar)
{
    Analyzed a(kDot, paperMachine());
    PartitionResult pr = partitionOps(a.loop(), a.va, a.machine);
    EXPECT_LE(pr.bestCost, pr.allScalarCost);
}

TEST(Partition, NothingVectorizableStaysScalar)
{
    Analyzed a(R"(
array A f64 1024
loop t {
    body {
        x = load A[3i]
        y = fneg x
        store A[3i + 1] = y
    }
}
)",
               paperMachine());
    // Strided accesses serialize everything via unknown-dep edges...
    // actually same-stride refs analyze exactly; but the accesses are
    // non-unit stride so memory stays scalar and the lone fneg is
    // reachable only through transfers.
    PartitionResult pr = partitionOps(a.loop(), a.va, a.machine);
    EXPECT_LE(pr.bestCost, pr.allScalarCost);
}

TEST(Partition, IterationCapRespected)
{
    Analyzed a(kDot, paperMachine());
    PartitionOptions options;
    options.maxIterations = 1;
    PartitionResult pr =
        partitionOps(a.loop(), a.va, a.machine, options);
    EXPECT_EQ(pr.iterations, 1);
}

TEST(Partition, ConvergesInFewIterations)
{
    // The paper observes convergence after only a few iterations.
    Analyzed a(kDot, paperMachine());
    PartitionResult pr = partitionOps(a.loop(), a.va, a.machine);
    EXPECT_LE(pr.iterations, 4);
    EXPECT_GT(pr.movesEvaluated, 0);
}

TEST(Partition, CommunicationBlindCostDiffers)
{
    Analyzed a(kDot, paperMachine());
    PartitionOptions blind;
    blind.cost.considerCommunication = false;
    PartitionResult with_comm = partitionOps(a.loop(), a.va, a.machine);
    PartitionResult without =
        partitionOps(a.loop(), a.va, a.machine, blind);
    // Blind partitioning sees lower (dishonest) costs.
    EXPECT_LE(without.bestCost, with_comm.bestCost);
}

} // anonymous namespace
} // namespace selvec
