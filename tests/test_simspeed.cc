/**
 * @file
 * Streaming-executor contract tests (ctest label `simspeed`,
 * DESIGN.md §13):
 *
 *  - randomized property: generated loops run pipelined on the
 *    streaming engine and the dense event-list reference produce
 *    identical observables (outputs, dynOps, exit state) and
 *    identical memory, across trip counts from degenerate to many
 *    times the rolling window;
 *  - early-exit store suppression agrees between the engines at
 *    every exit position, including each rolling-window boundary;
 *  - carried-value chains (multi-hop and self-referential/cyclic)
 *    stay exact across ring wraparound;
 *  - the cycle watchdog trips with the identical structured status
 *    on both engines, for genuine trips and for the "sim.watchdog"
 *    fault site;
 *  - steady-state streaming execution performs zero heap
 *    allocations: a 2048-iteration run allocates exactly as much as
 *    a 512-iteration run.
 *
 * This binary overrides the global operator new to count allocations,
 * which is why these tests live apart from selvec_tests.
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "analysis/depgraph.hh"
#include "driver/driver.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "pipeline/lowering.hh"
#include "pipeline/modsched.hh"
#include "sim/execplan.hh"
#include "sim/executor.hh"
#include "support/checkmode.hh"
#include "support/faultinject.hh"
#include "support/random.hh"
#include "workloads/generator.hh"

namespace
{

std::atomic<uint64_t> g_allocations{0};

} // anonymous namespace

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace selvec
{
namespace
{

/** Every observable of a run, compared field by field. */
void
expectSameOutput(const RunOutput &stream, const RunOutput &dense)
{
    EXPECT_EQ(stream.bodyIterations, dense.bodyIterations);
    EXPECT_EQ(stream.cycles, dense.cycles);
    EXPECT_EQ(stream.exited, dense.exited);
    EXPECT_EQ(stream.exitOrig, dense.exitOrig);
    EXPECT_EQ(stream.dynOps, dense.dynOps);
    EXPECT_EQ(stream.liveOuts, dense.liveOuts);
    EXPECT_EQ(stream.carriedFinal, dense.carriedFinal);
}

/** Run `loop` pipelined on both engines from identical memory and
 *  assert every observable and the final memory identical. Returns
 *  the streaming output for further assertions. */
RunOutput
runBothEngines(const ArrayTable &arrays, const Loop &loop,
               const ModuloSchedule &schedule, const Machine &machine,
               const LiveEnv &live_ins, int64_t n_body,
               uint64_t pattern)
{
    MemoryImage stream_mem(arrays);
    stream_mem.fillPattern(pattern);
    MemoryImage dense_mem(arrays);
    dense_mem.fillPattern(pattern);

    Expected<RunOutput> stream =
        tryExecuteLoop(arrays, loop, machine, stream_mem, live_ins,
                       n_body, 0, &schedule);
    Expected<RunOutput> dense =
        tryExecuteLoopDense(arrays, loop, machine, dense_mem,
                            live_ins, n_body, 0, &schedule);
    EXPECT_TRUE(stream.ok()) << stream.status().str();
    EXPECT_TRUE(dense.ok()) << dense.status().str();
    if (!stream.ok() || !dense.ok())
        return RunOutput{};
    expectSameOutput(stream.value(), dense.value());
    EXPECT_EQ(stream_mem.diff(dense_mem), "");
    return stream.takeValue();
}

// ---------------------------------------------------------------------
// Randomized property: streaming == dense over generated loops.

TEST(SimDiff, GeneratedLoopsMatchDenseAcrossTripCounts)
{
    Machine machine = paperMachine();
    int compiled = 0;
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        Rng rng(0xD1FF'0000ULL + seed);
        GeneratorOptions options;
        GeneratedLoop gen = generateLoop(rng, options);
        ArrayTable arrays = gen.module.arrays;
        Expected<CompiledProgram> program = tryCompileLoop(
            gen.loop(), arrays, machine, Technique::ModuloOnly);
        if (!program.ok())
            continue;
        ++compiled;
        const CompiledLoop &cl = program.value().loops.front();
        // Degenerate trips, trips inside one window, and trips many
        // windows past wraparound.
        for (int64_t n_body : {int64_t{0}, int64_t{1}, int64_t{2},
                               int64_t{7}, int64_t{31},
                               options.maxTrip / cl.coverage}) {
            SCOPED_TRACE(testing::Message()
                         << "seed " << seed << " n_body " << n_body);
            runBothEngines(arrays, cl.main, cl.mainSchedule, machine,
                           gen.liveIns, n_body, seed);
        }
    }
    // The generator and ModuloOnly are reliable enough that a
    // mostly-skipped sweep means the property test is not testing.
    EXPECT_GE(compiled, 20);
}

// ---------------------------------------------------------------------
// Early exit: suppression must agree at every window boundary.

const char *kEarlyExitStores = R"(
array A f64 64
array B f64 64
loop cut {
    livein lim f64
    body {
        x = load A[i]
        store B[i] = x
        c = fcmplt lim x
        exitif c
    }
}
)";

TEST(SimDiff, EarlyExitSuppressionAtEveryWindowBoundary)
{
    Module m = parseLirOrDie(kEarlyExitStores);
    Machine machine = paperMachine();
    Loop lowered = lowerForScheduling(m.loops[0], machine);
    DepGraph graph(m.arrays, lowered, machine);
    ScheduleResult sr = moduloSchedule(lowered, graph, machine);
    ASSERT_TRUE(sr.ok);
    ExecPlan plan = buildExecPlan(lowered, sr.schedule, machine);
    // The scan must cross several ring wraparounds to mean anything.
    ASSERT_LT(plan.windowFrames, 16);

    LiveEnv env;
    env["lim"] = RtVal::scalarF(5.0);
    for (int64_t exit_at = 0; exit_at < 48; ++exit_at) {
        SCOPED_TRACE(testing::Message() << "exit at " << exit_at);
        MemoryImage stream_mem(m.arrays);
        MemoryImage dense_mem(m.arrays);
        for (MemoryImage *mem : {&stream_mem, &dense_mem})
            for (int i = 0; i < 64; ++i)
                mem->storeF(0, i, i == exit_at ? 9.0 : 1.0);

        Expected<RunOutput> stream =
            tryExecuteLoop(m.arrays, lowered, machine, stream_mem,
                           env, 64, 0, &sr.schedule, {}, &plan);
        Expected<RunOutput> dense =
            tryExecuteLoopDense(m.arrays, lowered, machine, dense_mem,
                                env, 64, 0, &sr.schedule);
        ASSERT_TRUE(stream.ok()) << stream.status().str();
        ASSERT_TRUE(dense.ok()) << dense.status().str();
        expectSameOutput(stream.value(), dense.value());
        EXPECT_EQ(stream_mem.diff(dense_mem), "");

        // The sequential semantics, asserted absolutely: stores
        // 0..exit_at committed, everything later suppressed.
        ASSERT_TRUE(stream.value().exited);
        EXPECT_EQ(stream.value().exitOrig, exit_at);
        EXPECT_EQ(stream.value()
                      .dynOps[static_cast<size_t>(OpClass::MemStore)],
                  exit_at + 1);
    }
}

// ---------------------------------------------------------------------
// Carried chains across ring wraparound.

const char *kFibonacci = R"(
array A f64 16
loop fib {
    livein p0 f64
    livein q0 f64
    carried p f64 init p0 update x
    carried q f64 init q0 update p
    body {
        x = fadd p q
    }
    liveout x
}
)";

TEST(SimDiff, MultiHopCarriedChainAcrossRingWraparound)
{
    Module m = parseLirOrDie(kFibonacci);
    Machine machine = paperMachine();
    Loop lowered = lowerForScheduling(m.loops[0], machine);
    DepGraph graph(m.arrays, lowered, machine);
    ScheduleResult sr = moduloSchedule(lowered, graph, machine);
    ASSERT_TRUE(sr.ok);

    LiveEnv env;
    env["p0"] = RtVal::scalarF(1.0);
    env["q0"] = RtVal::scalarF(0.0);
    // Far past any plausible window: the q -> p hop must read frames
    // that wrapped many times. Fibonacci in doubles is exact to F_78.
    RunOutput out = runBothEngines(m.arrays, lowered, sr.schedule,
                                   machine, env, 70, 1);
    double p = 1.0, q = 0.0, x = 0.0;
    for (int i = 0; i < 70; ++i) {
        x = p + q;
        q = p;
        p = x;
    }
    EXPECT_DOUBLE_EQ(out.liveOuts.at("x").laneF(0), x);
    EXPECT_DOUBLE_EQ(out.carriedFinal.at("p").laneF(0), p);
    EXPECT_DOUBLE_EQ(out.carriedFinal.at("q").laneF(0), q);
}

const char *kCyclicCarried = R"(
array A f64 256
loop hold {
    livein c0 f64
    livein s0 f64
    carried c f64 init c0 update c
    carried s f64 init s0 update s1
    body {
        x = load A[i]
        y = fmul x c
        s1 = fadd s y
    }
    liveout s1
}
)";

TEST(SimDiff, SelfReferentialCarriedValueIsExact)
{
    Module m = parseLirOrDie(kCyclicCarried);
    Machine machine = paperMachine();
    Loop lowered = lowerForScheduling(m.loops[0], machine);
    DepGraph graph(m.arrays, lowered, machine);
    ScheduleResult sr = moduloSchedule(lowered, graph, machine);
    ASSERT_TRUE(sr.ok);

    LiveEnv env;
    env["c0"] = RtVal::scalarF(3.0);
    env["s0"] = RtVal::scalarF(0.0);
    RunOutput out = runBothEngines(m.arrays, lowered, sr.schedule,
                                   machine, env, 200, 5);
    // c never changes: the run is sum(A[i]) * 3.
    MemoryImage probe(m.arrays);
    probe.fillPattern(5);
    double sum = 0.0;
    for (int i = 0; i < 200; ++i)
        sum += probe.loadF(0, i) * 3.0;
    EXPECT_DOUBLE_EQ(out.liveOuts.at("s1").laneF(0), sum);
    EXPECT_DOUBLE_EQ(out.carriedFinal.at("c").laneF(0), 3.0);
}

// ---------------------------------------------------------------------
// Watchdog parity: both engines trip with the identical status.

const char *kWatchdogLoop = R"(
array X f64 4096
loop dot {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        s1 = fadd s x
    }
    liveout s1
}
)";

TEST(SimWatchdog, GenuineTripIsIdenticalAcrossEngines)
{
    Module m = parseLirOrDie(kWatchdogLoop);
    Machine machine = paperMachine();
    Loop lowered = lowerForScheduling(m.loops[0], machine);
    DepGraph graph(m.arrays, lowered, machine);
    ScheduleResult sr = moduloSchedule(lowered, graph, machine);
    ASSERT_TRUE(sr.ok);

    LiveEnv env;
    env["s0"] = RtVal::scalarF(0.0);
    ExecLimits limits;
    limits.maxCycles = 1;   // no pipeline finishes in one cycle

    MemoryImage stream_mem(m.arrays), dense_mem(m.arrays);
    stream_mem.fillPattern(1);
    dense_mem.fillPattern(1);
    Expected<RunOutput> stream =
        tryExecuteLoop(m.arrays, lowered, machine, stream_mem, env,
                       64, 0, &sr.schedule, limits);
    Expected<RunOutput> dense =
        tryExecuteLoopDense(m.arrays, lowered, machine, dense_mem,
                            env, 64, 0, &sr.schedule, limits);
    ASSERT_FALSE(stream.ok());
    ASSERT_FALSE(dense.ok());
    EXPECT_EQ(stream.status().code(), ErrorCode::WatchdogTripped);
    // Byte-identical structured status: same code, stage and message
    // (the fault-site parity the repro/replay pipeline depends on).
    EXPECT_EQ(stream.status().str(), dense.status().str());
}

TEST(SimWatchdog, FaultSiteTripsIdenticallyAcrossEngines)
{
    Module m = parseLirOrDie(kWatchdogLoop);
    Machine machine = paperMachine();
    Loop lowered = lowerForScheduling(m.loops[0], machine);
    DepGraph graph(m.arrays, lowered, machine);
    ScheduleResult sr = moduloSchedule(lowered, graph, machine);
    ASSERT_TRUE(sr.ok);

    LiveEnv env;
    env["s0"] = RtVal::scalarF(0.0);
    ExecLimits limits;
    limits.watchdogFactor = 16;

    auto tripped = [&](bool dense_engine) {
        FaultPlan plan = parseFaultPlan("sim.watchdog:*").value();
        ScopedFaultPlan armed(plan);
        MemoryImage mem(m.arrays);
        mem.fillPattern(1);
        return dense_engine
                   ? tryExecuteLoopDense(m.arrays, lowered, machine,
                                         mem, env, 64, 0,
                                         &sr.schedule, limits)
                         .status()
                   : tryExecuteLoop(m.arrays, lowered, machine, mem,
                                    env, 64, 0, &sr.schedule, limits)
                         .status();
    };
    Status stream = tripped(false);
    Status dense = tripped(true);
    EXPECT_EQ(stream.code(), ErrorCode::WatchdogTripped);
    EXPECT_EQ(stream.str(), dense.str());
}

// ---------------------------------------------------------------------
// The memory contract: steady state allocates nothing, so a run's
// allocation count is independent of its trip count.

TEST(SimAllocation, SteadyStateIsAllocationFree)
{
    Module m = parseLirOrDie(kWatchdogLoop);
    Machine machine = paperMachine();
    Loop lowered = lowerForScheduling(m.loops[0], machine);
    DepGraph graph(m.arrays, lowered, machine);
    ScheduleResult sr = moduloSchedule(lowered, graph, machine);
    ASSERT_TRUE(sr.ok);
    ExecPlan plan = buildExecPlan(lowered, sr.schedule, machine);

    LiveEnv env;
    env["s0"] = RtVal::scalarF(0.0);

    // The lockstep shadow allocates per instance by design; it must
    // be off for the count to measure the streaming engine alone.
    bool prior = checkSimEnabled();
    setCheckSim(false);

    auto countRun = [&](int64_t n_body) {
        MemoryImage mem(m.arrays);
        mem.fillPattern(1);
        uint64_t before =
            g_allocations.load(std::memory_order_relaxed);
        RunOutput out = executeLoop(m.arrays, lowered, machine, mem,
                                    env, n_body, 0, &sr.schedule,
                                    &plan);
        uint64_t after =
            g_allocations.load(std::memory_order_relaxed);
        EXPECT_EQ(out.bodyIterations, n_body);
        return after - before;
    };

    // Warm-up run: first-touch allocations (stats registry nodes,
    // internal caches) must not skew the comparison.
    countRun(512);
    uint64_t small = countRun(512);
    uint64_t large = countRun(2048);
    EXPECT_EQ(small, large)
        << "a 4x longer run allocated " << (large - small)
        << " more times: the steady state is not allocation-free";

    setCheckSim(prior);
}

} // anonymous namespace
} // namespace selvec
