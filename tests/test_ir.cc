/**
 * @file
 * Unit tests for the IR: opcode table invariants, Loop containers,
 * the builder, def-use chains and the verifier's rejection paths.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/defuse.hh"
#include "ir/verifier.hh"

namespace selvec
{
namespace
{

// ---------------------------------------------------------------- types

TEST(Types, ElementAndVectorRoundTrip)
{
    EXPECT_EQ(elementType(Type::VF64), Type::F64);
    EXPECT_EQ(elementType(Type::VI64), Type::I64);
    EXPECT_EQ(vectorType(Type::F64), Type::VF64);
    EXPECT_EQ(vectorType(Type::I64), Type::VI64);
    EXPECT_EQ(elementType(vectorType(Type::F64)), Type::F64);
}

TEST(Types, NamesRoundTrip)
{
    for (Type t : {Type::I64, Type::F64, Type::VI64, Type::VF64,
                   Type::Chan}) {
        EXPECT_EQ(typeFromName(typeName(t)), t);
    }
    EXPECT_EQ(typeFromName("bogus"), Type::None);
}

// -------------------------------------------------------------- opcodes

TEST(Opcodes, VectorScalarFormsAreInverse)
{
    for (int i = 0; i < kNumOpcodes; ++i) {
        Opcode op = static_cast<Opcode>(i);
        if (hasVectorForm(op)) {
            Opcode vec = vectorOpcode(op);
            EXPECT_TRUE(isVectorOp(vec)) << opName(op);
            EXPECT_EQ(scalarOpcode(vec), op) << opName(op);
        }
    }
}

TEST(Opcodes, NamesRoundTrip)
{
    for (int i = 0; i < kNumOpcodes; ++i) {
        Opcode op = static_cast<Opcode>(i);
        EXPECT_EQ(opcodeFromName(opName(op)), op);
    }
    EXPECT_EQ(opcodeFromName("bogus"), Opcode::NumOpcodes);
}

TEST(Opcodes, MemoryFlagsConsistent)
{
    EXPECT_TRUE(isMemoryOp(Opcode::Load));
    EXPECT_TRUE(isMemoryOp(Opcode::VStore));
    EXPECT_TRUE(isStoreOp(Opcode::VStore));
    EXPECT_FALSE(isStoreOp(Opcode::VLoad));
    EXPECT_FALSE(isMemoryOp(Opcode::FAdd));
    // Transfer channels are *not* AffineRef memory even though they
    // use memory-class resources.
    EXPECT_FALSE(isMemoryOp(Opcode::XferStoreV));
}

TEST(Opcodes, VectorMemoryKeepsUnitClassPairing)
{
    EXPECT_EQ(opClass(Opcode::VLoad), OpClass::VecMemLoad);
    EXPECT_EQ(opClass(Opcode::VStore), OpClass::VecMemStore);
    EXPECT_EQ(opClass(Opcode::VMerge), OpClass::VecMergeCls);
    EXPECT_EQ(opClass(Opcode::VFDiv), OpClass::VecFpDiv);
}

// ----------------------------------------------------------------- loop

TEST(Loop, AddAndFindValues)
{
    Loop loop;
    loop.name = "t";
    ValueId a = loop.addValue(Type::F64, "a");
    ValueId b = loop.addValue(Type::I64, "b");
    EXPECT_EQ(loop.findValue("a"), a);
    EXPECT_EQ(loop.findValue("b"), b);
    EXPECT_EQ(loop.findValue("c"), kNoValue);
    EXPECT_EQ(loop.typeOf(a), Type::F64);
}

TEST(Loop, FreshNameAvoidsCollisions)
{
    Loop loop;
    loop.name = "t";
    loop.addValue(Type::F64, "x");
    loop.addValue(Type::F64, "x.1");
    std::string fresh = loop.freshName("x");
    EXPECT_EQ(loop.findValue(fresh), kNoValue);
    EXPECT_NE(fresh, "x");
    EXPECT_NE(fresh, "x.1");
}

TEST(Loop, CarriedIndexLookup)
{
    Loop loop;
    loop.name = "t";
    ValueId init = loop.addValue(Type::F64, "s0");
    loop.liveIns.push_back(init);
    ValueId in = loop.addValue(Type::F64, "s");
    ValueId upd = loop.addValue(Type::F64, "s1");
    loop.carried.push_back(CarriedValue{in, upd, init});
    EXPECT_EQ(loop.carriedIndexOfIn(in), 0);
    EXPECT_EQ(loop.carriedIndexOfUpdate(upd), 0);
    EXPECT_EQ(loop.carriedIndexOfIn(upd), -1);
}

TEST(ArrayTableTest, AddFindAndDuplicateDeath)
{
    ArrayTable t;
    ArrayId a = t.add(ArrayInfo{"A", Type::F64, 100, false, 2});
    EXPECT_EQ(t.find("A"), a);
    EXPECT_EQ(t.find("B"), kNoArray);
    EXPECT_EQ(t[a].size, 100);
    EXPECT_DEATH(t.add(ArrayInfo{"A", Type::F64, 1, false, 2}), "dup");
}

// -------------------------------------------------------------- builder

TEST(Builder, DotProductIsWellFormed)
{
    ArrayTable arrays;
    LoopBuilder b(arrays, "dot");
    ArrayId x = b.array("X", Type::F64, 64);
    ArrayId y = b.array("Y", Type::F64, 64);
    ValueId s0 = b.liveIn("s0", Type::F64);
    ValueId s = b.carriedIn("s", Type::F64, s0);
    ValueId xv = b.load(x, 1, 0, "x");
    ValueId yv = b.load(y, 1, 0, "y");
    ValueId t = b.emit(Opcode::FMul, {xv, yv}, "t");
    ValueId s1 = b.emit(Opcode::FAdd, {s, t}, "s1");
    b.bindUpdate(s, s1);
    b.liveOut(s1);
    Loop loop = b.take();

    EXPECT_EQ(loop.numOps(), 4);
    EXPECT_EQ(loop.carried.size(), 1u);
    EXPECT_EQ(verifyLoop(arrays, loop), "");
}

TEST(Builder, ConstantsAndPolymorphicTypes)
{
    ArrayTable arrays;
    LoopBuilder b(arrays, "t");
    ValueId i = b.iconst(5);
    ValueId f = b.fconst(2.5);
    EXPECT_EQ(b.loop().typeOf(i), Type::I64);
    EXPECT_EQ(b.loop().typeOf(f), Type::F64);
    ValueId v = b.emit(Opcode::VSplat, {f});
    EXPECT_EQ(b.loop().typeOf(v), Type::VF64);
    ValueId back = b.emit(Opcode::MovVS, {v});
    EXPECT_EQ(b.loop().typeOf(back), Type::F64);
}

TEST(Builder, UnboundCarriedDies)
{
    ArrayTable arrays;
    LoopBuilder b(arrays, "t");
    ValueId s0 = b.liveIn("s0", Type::F64);
    b.carriedIn("s", Type::F64, s0);
    EXPECT_DEATH(b.take(), "no bound update");
}

// --------------------------------------------------------------- defuse

TEST(DefUse, DefsAndUses)
{
    ArrayTable arrays;
    LoopBuilder b(arrays, "t");
    ArrayId x = b.array("X", Type::F64, 64);
    ValueId a = b.load(x, 1, 0, "a");
    ValueId c = b.emit(Opcode::FAdd, {a, a}, "c");
    b.store(x, 1, 1, c);
    Loop loop = b.take();

    DefUse du(loop);
    EXPECT_EQ(du.defOp(a), 0);
    EXPECT_EQ(du.defOp(c), 1);
    ASSERT_EQ(du.uses(a).size(), 2u);   // both operands of the add
    EXPECT_EQ(du.uses(a)[0], 1);
    ASSERT_EQ(du.uses(c).size(), 1u);
    EXPECT_EQ(du.uses(c)[0], 2);
}

TEST(DefUse, ExternalDefsReportNoOp)
{
    ArrayTable arrays;
    LoopBuilder b(arrays, "t");
    ArrayId x = b.array("X", Type::F64, 64);
    ValueId li = b.liveIn("li", Type::F64);
    b.store(x, 1, 0, li);
    Loop loop = b.take();
    DefUse du(loop);
    EXPECT_EQ(du.defOp(li), kNoOp);
    EXPECT_TRUE(du.hasUses(li));
}

// ------------------------------------------------------------- verifier

/** Helper: a minimal valid loop to corrupt. */
Loop
smallLoop(ArrayTable &arrays)
{
    LoopBuilder b(arrays, "v");
    ArrayId x = b.array("X", Type::F64, 64);
    ValueId a = b.load(x, 1, 0, "a");
    ValueId c = b.emit(Opcode::FNeg, {a}, "c");
    b.store(x, 1, 1, c);
    return b.take();
}

TEST(Verifier, AcceptsValidLoop)
{
    ArrayTable arrays;
    Loop loop = smallLoop(arrays);
    EXPECT_EQ(verifyLoop(arrays, loop), "");
}

TEST(Verifier, RejectsDoubleDefinition)
{
    ArrayTable arrays;
    Loop loop = smallLoop(arrays);
    loop.ops[1].dest = loop.ops[0].dest;   // redefine 'a'
    EXPECT_NE(verifyLoop(arrays, loop), "");
}

TEST(Verifier, RejectsInvisibleOperand)
{
    ArrayTable arrays;
    Loop loop = smallLoop(arrays);
    ValueId ghost = loop.addValue(Type::F64, "ghost");
    loop.ops[1].srcs[0] = ghost;
    EXPECT_NE(verifyLoop(arrays, loop), "");
}

TEST(Verifier, RejectsTypeMismatch)
{
    ArrayTable arrays;
    Loop loop = smallLoop(arrays);
    ValueId i = loop.addValue(Type::I64, "i");
    loop.liveIns.push_back(i);
    loop.ops[1].srcs[0] = i;   // FNeg of an i64
    EXPECT_NE(verifyLoop(arrays, loop), "");
}

TEST(Verifier, RejectsWrongOperandCount)
{
    ArrayTable arrays;
    Loop loop = smallLoop(arrays);
    loop.ops[1].srcs.push_back(loop.ops[0].dest);
    EXPECT_NE(verifyLoop(arrays, loop), "");
}

TEST(Verifier, RejectsBadArrayReference)
{
    ArrayTable arrays;
    Loop loop = smallLoop(arrays);
    loop.ops[0].ref.array = 99;
    EXPECT_NE(verifyLoop(arrays, loop), "");
}

TEST(Verifier, RejectsRefOnNonMemoryOp)
{
    ArrayTable arrays;
    Loop loop = smallLoop(arrays);
    loop.ops[1].ref = loop.ops[0].ref;
    EXPECT_NE(verifyLoop(arrays, loop), "");
}

TEST(Verifier, RejectsBadLiveOut)
{
    ArrayTable arrays;
    Loop loop = smallLoop(arrays);
    loop.liveOuts.push_back(999);
    EXPECT_NE(verifyLoop(arrays, loop), "");
}

TEST(Verifier, RejectsChannelEscape)
{
    ArrayTable arrays;
    LoopBuilder b(arrays, "t");
    ValueId li = b.liveIn("li", Type::F64);
    ValueId chan = b.emit(Opcode::XferStoreS, {li}, "ch");
    ValueId out = b.emit(Opcode::XferLoadS, {chan}, "o");
    b.liveOut(out);
    Loop loop = b.take();
    // Channel consumed by a non-transfer op is rejected.
    loop.ops[1].opcode = Opcode::FNeg;
    EXPECT_NE(verifyLoop(arrays, loop), "");
}

TEST(Verifier, RejectsCarriedTypeMismatch)
{
    ArrayTable arrays;
    LoopBuilder b(arrays, "t");
    ArrayId x = b.array("X", Type::F64, 64);
    ValueId s0 = b.liveIn("s0", Type::F64);
    ValueId s = b.carriedIn("s", Type::F64, s0);
    ValueId a = b.load(x, 1, 0, "a");
    ValueId s1 = b.emit(Opcode::FAdd, {s, a}, "s1");
    b.bindUpdate(s, s1);
    b.liveOut(s1);
    Loop loop = b.take();
    loop.values[static_cast<size_t>(s0)].type = Type::I64;
    EXPECT_NE(verifyLoop(arrays, loop), "");
}

TEST(Verifier, RejectsNegativeCoverage)
{
    ArrayTable arrays;
    Loop loop = smallLoop(arrays);
    loop.coverage = 0;
    EXPECT_NE(verifyLoop(arrays, loop), "");
}

TEST(Verifier, RejectsSplatOfNonLiveIn)
{
    ArrayTable arrays;
    Loop loop = smallLoop(arrays);
    ValueId vec = loop.addValue(Type::VF64, "vec");
    // Splat of a body-defined value is not a hoistable broadcast.
    loop.splatIns.push_back(SplatIn{vec, loop.ops[0].dest});
    EXPECT_NE(verifyLoop(arrays, loop), "");
}

} // anonymous namespace
} // namespace selvec
