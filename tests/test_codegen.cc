/**
 * @file
 * Tests for the prologue/kernel/epilogue code generation schema.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/depgraph.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "pipeline/codegen.hh"
#include "pipeline/lowering.hh"
#include "pipeline/modsched.hh"
#include "workloads/generator.hh"

namespace selvec
{
namespace
{

struct Built
{
    Module module;
    Loop lowered;
    ModuloSchedule schedule;
    PipelinedCode code;
};

Built
build(const char *text, const Machine &machine)
{
    Built b;
    b.module = parseLirOrDie(text);
    b.lowered = lowerForScheduling(b.module.loops[0], machine);
    DepGraph graph(b.module.arrays, b.lowered, machine);
    ScheduleResult sr = moduloSchedule(b.lowered, graph, machine);
    EXPECT_TRUE(sr.ok) << sr.error;
    b.schedule = std::move(sr.schedule);
    b.code = generatePipelinedCode(b.lowered, b.schedule);
    return b;
}

const char *kChain = R"(
array A f64 256
array B f64 256
loop t {
    livein c f64
    body {
        x = load A[i]
        y = fmul x c
        z = fadd y c
        store B[i] = z
    }
}
)";

TEST(Codegen, RegionSizes)
{
    Built b = build(kChain, paperMachine());
    EXPECT_EQ(b.code.ii, b.schedule.ii);
    EXPECT_EQ(b.code.stageCount, b.schedule.stageCount());
    EXPECT_EQ(b.code.prologueCycles(),
              (b.code.stageCount - 1) * b.code.ii);
    EXPECT_EQ(static_cast<int64_t>(b.code.kernel.size()), b.code.ii);
}

TEST(Codegen, KernelContainsEveryOpOnce)
{
    Built b = build(kChain, paperMachine());
    std::map<OpId, int> seen;
    for (const auto &row : b.code.kernel) {
        for (const CodeOp &inst : row)
            ++seen[inst.op];
    }
    EXPECT_EQ(static_cast<int>(seen.size()), b.lowered.numOps());
    for (const auto &[op, count] : seen)
        EXPECT_EQ(count, 1) << "op " << op;
}

TEST(Codegen, MultisetIdentity)
{
    // prologue + (n - SC + 1) kernels + epilogue == n full bodies.
    Built b = build(kChain, paperMachine());
    for (int64_t n :
         {b.code.stageCount - 1, b.code.stageCount,
          b.code.stageCount + 5}) {
        std::map<OpId, int64_t> emitted;
        for (const auto &row : b.code.prologue)
            for (const CodeOp &inst : row)
                ++emitted[inst.op];
        for (const auto &row : b.code.epilogue)
            for (const CodeOp &inst : row)
                ++emitted[inst.op];
        int64_t kernel_copies = n - (b.code.stageCount - 1);
        for (const auto &row : b.code.kernel)
            for (const CodeOp &inst : row)
                emitted[inst.op] += kernel_copies;
        for (OpId op = 0; op < b.lowered.numOps(); ++op)
            EXPECT_EQ(emitted[op], n) << "op " << op << " n " << n;
    }
}

TEST(Codegen, PrologueIterationsAscendFromZero)
{
    Built b = build(kChain, paperMachine());
    for (const auto &row : b.code.prologue) {
        for (const CodeOp &inst : row) {
            EXPECT_GE(inst.iteration, 0);
            EXPECT_LT(inst.iteration, b.code.stageCount - 1);
        }
    }
}

TEST(Codegen, KernelStagesSpanPipelineDepth)
{
    Built b = build(kChain, paperMachine());
    int64_t max_stage = 0;
    for (const auto &row : b.code.kernel) {
        for (const CodeOp &inst : row) {
            EXPECT_GE(inst.iteration, 0);
            max_stage = std::max(max_stage, inst.iteration);
        }
    }
    EXPECT_EQ(max_stage, b.code.stageCount - 1);
}

TEST(Codegen, SingleStageLoopHasEmptyPrologue)
{
    // A loop whose schedule fits inside one II needs no fill/drain.
    Built b = build(R"(
array A f64 256
loop t {
    body {
        x = load A[i]
        store A[i] = x
    }
}
)",
                    toyMachine());
    if (b.code.stageCount == 1) {
        EXPECT_EQ(b.code.prologueCycles(), 0);
        EXPECT_EQ(b.code.epilogueCycles(), 0);
    }
}

TEST(Codegen, FormatMentionsRegions)
{
    Built b = build(kChain, paperMachine());
    std::string text = formatPipelinedCode(b.lowered, b.code);
    EXPECT_NE(text.find("prologue"), std::string::npos);
    EXPECT_NE(text.find("kernel"), std::string::npos);
    EXPECT_NE(text.find("epilogue"), std::string::npos);
    EXPECT_NE(text.find("fmul"), std::string::npos);
}

TEST(Codegen, RandomLoopsSatisfyIdentity)
{
    Rng rng(0xC0DE);
    Machine machine = paperMachine();
    for (int trial = 0; trial < 10; ++trial) {
        GeneratedLoop g = generateLoop(rng);
        Loop lowered = lowerForScheduling(g.loop(), machine);
        DepGraph graph(g.module.arrays, lowered, machine);
        ScheduleResult sr = moduloSchedule(lowered, graph, machine);
        ASSERT_TRUE(sr.ok) << sr.error;
        PipelinedCode code = generatePipelinedCode(lowered, sr.schedule);

        int64_t n = code.stageCount + 3;
        std::map<OpId, int64_t> emitted;
        for (const auto &row : code.prologue)
            for (const CodeOp &inst : row)
                ++emitted[inst.op];
        for (const auto &row : code.epilogue)
            for (const CodeOp &inst : row)
                ++emitted[inst.op];
        for (const auto &row : code.kernel)
            for (const CodeOp &inst : row)
                emitted[inst.op] += n - (code.stageCount - 1);
        for (OpId op = 0; op < lowered.numOps(); ++op)
            ASSERT_EQ(emitted[op], n) << "trial " << trial;
    }
}

} // anonymous namespace
} // namespace selvec
