/**
 * @file
 * Tests for the reduction-recognition extension (paper section 6):
 * associative recurrences vectorized with partial accumulators and a
 * post-loop fold. Integer reductions are exact and compared bitwise;
 * floating-point reductions are reordered by design and compared with
 * tolerance.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/depgraph.hh"
#include "core/transform.hh"
#include "driver/driver.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"

namespace selvec
{
namespace
{

const char *kDot = R"(
array X f64 512
array Y f64 512
loop dot {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        y = load Y[i]
        t = fmul x y
        s1 = fadd s t
    }
    liveout s1
}
)";

const char *kIntSum = R"(
array A i64 512
loop isum {
    livein s0 i64
    carried s i64 init s0 update s1
    body {
        x = load A[i]
        x2 = imul x x
        s1 = iadd s x2
    }
    liveout s1
}
)";

const char *kMaxNorm = R"(
array A f64 512
loop fnorm {
    livein m0 f64
    carried m f64 init m0 update m1
    body {
        x = load A[i]
        ax = fabs x
        m1 = fmax m ax
    }
    liveout m1
}
)";

struct Compiled
{
    Module module;
    ArrayTable arrays;
    CompiledProgram program;
};

Compiled
compileWithReductions(const char *text, const Machine &machine)
{
    Compiled c;
    c.module = parseLirOrDie(text);
    c.arrays = c.module.arrays;
    DriverOptions options;
    options.vectorize.recognizeReductions = true;
    c.program = compileLoop(c.module.loops[0], c.arrays, machine,
                            Technique::Selective, options);
    return c;
}

TEST(Reduction, AnalysisMarksTheCycle)
{
    Module m = parseLirOrDie(kDot);
    Machine mach = paperMachine();
    DepGraph graph(m.arrays, m.loops[0], mach);
    VectOptions on;
    on.recognizeReductions = true;
    VectAnalysis va = analyzeVectorizable(m.loops[0], graph, mach, on);
    EXPECT_TRUE(va.vectorizable[3]);
    EXPECT_TRUE(va.reduction[3]);
}

TEST(Reduction, TransformBuildsAccumulatorMachinery)
{
    Module m = parseLirOrDie(kDot);
    Machine mach = paperMachine();
    DepGraph graph(m.arrays, m.loops[0], mach);
    VectOptions on;
    on.recognizeReductions = true;
    VectAnalysis va = analyzeVectorizable(m.loops[0], graph, mach, on);
    Loop vec = transformLoop(m.loops[0], m.arrays, va, va.vectorizable,
                             mach);

    EXPECT_EQ(vec.reduceInits.size(), 1u);
    ASSERT_EQ(vec.postReduces.size(), 1u);
    EXPECT_EQ(vec.postReduces[0].op, Opcode::FAdd);
    EXPECT_NE(vec.postReduces[0].chainIn, kNoValue);
    EXPECT_EQ(vec.valueInfo(vec.postReduces[0].chainIn).name, "s");
    // The fold keeps the original live-out name.
    ASSERT_EQ(vec.liveOuts.size(), 1u);
    EXPECT_EQ(vec.valueInfo(vec.liveOuts[0]).name, "s1");
    // The recurrence is now a vector accumulator: one VFAdd, no
    // scalar FAdd chain.
    int vfadd = 0, fadd = 0;
    for (const Operation &op : vec.ops) {
        vfadd += op.opcode == Opcode::VFAdd;
        fadd += op.opcode == Opcode::FAdd;
    }
    EXPECT_EQ(vfadd, 1);
    EXPECT_EQ(fadd, 0);
}

TEST(Reduction, BreaksTheRecurrenceBound)
{
    // On the Table 1 machine the scalar dot product is bound by the
    // FP-add recurrence (II 4 per iteration); partial accumulators
    // remove the bound entirely.
    Machine mach = paperMachine();
    Module m = parseLirOrDie(kDot);
    ArrayTable plain_arrays = m.arrays;
    CompiledProgram plain = compileLoop(m.loops[0], plain_arrays, mach,
                                        Technique::Selective);
    Compiled red = compileWithReductions(kDot, mach);
    EXPECT_LT(red.program.iiPerIteration(), plain.iiPerIteration());
}

TEST(Reduction, IntegerSumIsExact)
{
    Machine mach = paperMachine();
    Compiled c = compileWithReductions(kIntSum, mach);
    LiveEnv env;
    env["s0"] = RtVal::scalarI(100);

    for (int64_t n : {0, 1, 7, 64, 65}) {
        MemoryImage mem(c.arrays);
        mem.fillPattern(21);
        ExecResult got = runCompiled(c.program, c.arrays, mach, mem,
                                     env, n);
        MemoryImage ref(c.arrays);
        ref.fillPattern(21);
        ExecResult want = runReference(c.module.loops[0], c.arrays,
                                       mach, ref, env, n);
        if (n == 0)
            continue;   // body live-out undefined either way
        ASSERT_TRUE(got.env.count("s1")) << "n=" << n;
        EXPECT_EQ(got.env.at("s1"), want.env.at("s1")) << "n=" << n;
    }
}

TEST(Reduction, FloatSumMatchesWithinTolerance)
{
    Machine mach = paperMachine();
    Compiled c = compileWithReductions(kDot, mach);
    LiveEnv env;
    env["s0"] = RtVal::scalarF(0.5);

    for (int64_t n : {1, 2, 63, 64, 65}) {
        MemoryImage mem(c.arrays);
        mem.fillPattern(22);
        ExecResult got = runCompiled(c.program, c.arrays, mach, mem,
                                     env, n);
        MemoryImage ref(c.arrays);
        ref.fillPattern(22);
        ExecResult want = runReference(c.module.loops[0], c.arrays,
                                       mach, ref, env, n);
        double g = got.env.at("s1").laneF(0);
        double w = want.env.at("s1").laneF(0);
        EXPECT_NEAR(g, w, 1e-9 * (std::fabs(w) + 1.0)) << "n=" << n;
    }
}

TEST(Reduction, MaxNormIsExact)
{
    // min/max reductions are insensitive to reassociation: bitwise
    // equality holds.
    Machine mach = paperMachine();
    Compiled c = compileWithReductions(kMaxNorm, mach);
    LiveEnv env;
    env["m0"] = RtVal::scalarF(0.0);

    for (int64_t n : {1, 2, 31, 64}) {
        MemoryImage mem(c.arrays);
        mem.fillPattern(23);
        ExecResult got = runCompiled(c.program, c.arrays, mach, mem,
                                     env, n);
        MemoryImage ref(c.arrays);
        ref.fillPattern(23);
        ExecResult want = runReference(c.module.loops[0], c.arrays,
                                       mach, ref, env, n);
        EXPECT_EQ(got.env.at("m1"), want.env.at("m1")) << "n=" << n;
    }
}

TEST(Reduction, EscapingUpdateIsNotVectorized)
{
    // The running sum is observed inside the body: partial
    // accumulators would change the observed values, so recognition
    // must decline.
    Module m = parseLirOrDie(R"(
array A f64 512
array B f64 512
loop prefix {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load A[i]
        s1 = fadd s x
        store B[i] = s1
    }
    liveout s1
}
)");
    Machine mach = paperMachine();
    DepGraph graph(m.arrays, m.loops[0], mach);
    VectOptions on;
    on.recognizeReductions = true;
    VectAnalysis va = analyzeVectorizable(m.loops[0], graph, mach, on);
    EXPECT_FALSE(va.reduction[1]);
    EXPECT_FALSE(va.vectorizable[1]);
}

TEST(Reduction, OffByDefault)
{
    Machine mach = paperMachine();
    Module m = parseLirOrDie(kDot);
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, mach, Technique::Selective);
    for (const CompiledLoop &cl : p.loops)
        EXPECT_TRUE(cl.main.postReduces.empty());
}

TEST(Reduction, LirRoundTrip)
{
    Machine mach = paperMachine();
    Module m = parseLirOrDie(kDot);
    DepGraph graph(m.arrays, m.loops[0], mach);
    VectOptions on;
    on.recognizeReductions = true;
    VectAnalysis va = analyzeVectorizable(m.loops[0], graph, mach, on);
    Loop vec = transformLoop(m.loops[0], m.arrays, va, va.vectorizable,
                             mach);

    Module round;
    round.arrays = m.arrays;
    round.loops.push_back(vec);
    std::string text = writeLir(round);
    ParseResult pr = parseLir(text);
    ASSERT_TRUE(pr.ok) << pr.error << "\n" << text;
    const Loop &back = pr.module.loops.front();
    EXPECT_EQ(back.reduceInits.size(), vec.reduceInits.size());
    EXPECT_EQ(back.postReduces.size(), vec.postReduces.size());
    ASSERT_FALSE(back.postReduces.empty());
    EXPECT_EQ(back.postReduces[0].op, vec.postReduces[0].op);
    EXPECT_NE(back.postReduces[0].chainIn, kNoValue);
}

} // anonymous namespace
} // namespace selvec
