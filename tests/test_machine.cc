/**
 * @file
 * Unit tests for the machine model and the Figure 2 bin-packing.
 */

#include <gtest/gtest.h>

#include "machine/binpack.hh"
#include "machine/machine.hh"

namespace selvec
{
namespace
{

TEST(MachineModel, StockConfigsValidate)
{
    paperMachine().validate();
    toyMachine().validate();
    directMoveMachine().validate();
}

TEST(MachineModel, PaperMachineMatchesTable1)
{
    Machine m = paperMachine();
    EXPECT_EQ(m.unitCount(ResKind::Slot), 6);
    EXPECT_EQ(m.unitCount(ResKind::IntUnit), 4);
    EXPECT_EQ(m.unitCount(ResKind::FpUnit), 2);
    EXPECT_EQ(m.unitCount(ResKind::MemUnit), 2);
    EXPECT_EQ(m.unitCount(ResKind::BranchUnit), 1);
    EXPECT_EQ(m.unitCount(ResKind::VecUnit), 1);
    EXPECT_EQ(m.unitCount(ResKind::VecMergeUnit), 1);
    EXPECT_EQ(m.vectorLength, 2);

    EXPECT_EQ(m.latency(Opcode::IAdd), 1);
    EXPECT_EQ(m.latency(Opcode::IMul), 3);
    EXPECT_EQ(m.latency(Opcode::IDiv), 36);
    EXPECT_EQ(m.latency(Opcode::FAdd), 4);
    EXPECT_EQ(m.latency(Opcode::FMul), 4);
    EXPECT_EQ(m.latency(Opcode::FDiv), 32);
    EXPECT_EQ(m.latency(Opcode::Load), 3);
    EXPECT_EQ(m.latency(Opcode::Br), 1);
    // Vector operations share their scalar counterparts' latencies.
    EXPECT_EQ(m.latency(Opcode::VFAdd), 4);
    EXPECT_EQ(m.latency(Opcode::VIMul), 3);
    EXPECT_EQ(m.latency(Opcode::VLoad), 3);
}

TEST(MachineModel, UnitIndexingIsContiguous)
{
    Machine m = paperMachine();
    EXPECT_EQ(m.totalUnits(), 6 + 4 + 2 + 2 + 1 + 1 + 1);
    EXPECT_EQ(m.firstUnit(ResKind::Slot), 0);
    EXPECT_EQ(m.firstUnit(ResKind::IntUnit), 6);
    EXPECT_EQ(m.firstUnit(ResKind::FpUnit), 10);
    EXPECT_EQ(m.unitName(6), "IntUnit0");
    EXPECT_EQ(m.unitName(10), "FpUnit0");
}

TEST(MachineModel, VectorMemorySharesScalarMemUnits)
{
    Machine m = paperMachine();
    auto kinds = [](const std::vector<Reservation> &rs) {
        std::vector<ResKind> v;
        for (const Reservation &r : rs)
            v.push_back(r.kind);
        return v;
    };
    auto scalar = kinds(m.reservations(Opcode::Load));
    auto vec = kinds(m.reservations(Opcode::VLoad));
    EXPECT_EQ(scalar, vec);
}

TEST(BinPack, SingleOpHighWater)
{
    Machine m = paperMachine();
    ReservationBins bins(m);
    bins.reserve(Opcode::FAdd);
    EXPECT_EQ(bins.highWaterMark(), 1);
}

TEST(BinPack, BalancesAcrossAlternatives)
{
    Machine m = paperMachine();
    ReservationBins bins(m);
    // Four int ops spread over four int units: high water stays 1.
    for (int i = 0; i < 4; ++i)
        bins.reserve(Opcode::IAdd);
    EXPECT_EQ(bins.highWaterMark(), 1);
    bins.reserve(Opcode::IAdd);
    EXPECT_EQ(bins.highWaterMark(), 2);
}

TEST(BinPack, MultiCycleReservation)
{
    Machine m = paperMachine();
    ReservationBins bins(m);
    bins.reserve(Opcode::FDiv);
    // The divider holds its FP unit for several cycles.
    EXPECT_GT(bins.highWaterMark(), 1);
}

TEST(BinPack, ReleaseRestoresExactState)
{
    Machine m = paperMachine();
    ReservationBins bins(m);
    bins.reserve(Opcode::FMul);
    bins.reserve(Opcode::Load);
    int64_t before_high = bins.highWaterMark();
    int64_t before_sq = bins.sumSquares();

    std::vector<Placement> ledger = bins.reserve(Opcode::FDiv);
    EXPECT_NE(bins.sumSquares(), before_sq);
    bins.release(ledger);
    EXPECT_EQ(bins.highWaterMark(), before_high);
    EXPECT_EQ(bins.sumSquares(), before_sq);

    // restore() re-applies verbatim.
    bins.restore(ledger);
    bins.release(ledger);
    EXPECT_EQ(bins.sumSquares(), before_sq);
}

TEST(BinPack, SquaredTiebreakBalances)
{
    // With two FP units, two FP ops must land on different units even
    // though either placement has the same high-water mark.
    Machine m = paperMachine();
    ReservationBins bins(m);
    bins.reserve(Opcode::FAdd);
    bins.reserve(Opcode::FAdd);
    int first = m.firstUnit(ResKind::FpUnit);
    EXPECT_EQ(bins.weight(first), 1);
    EXPECT_EQ(bins.weight(first + 1), 1);
}

TEST(BinPack, PackingOrderPutsConstrainedOpsFirst)
{
    Machine m = paperMachine();
    // The vector multiply has one alternative (VecUnit); the int add
    // has four.
    std::vector<Opcode> ops = {Opcode::IAdd, Opcode::VFMul,
                               Opcode::IAdd};
    std::vector<int> order = packingOrder(m, ops);
    EXPECT_EQ(order[0], 1);
}

TEST(BinPack, PackedHighWaterMatchesHandCount)
{
    Machine m = paperMachine();
    // 6 FP ops on 2 FP units -> 3; 2 mem ops on 2 units -> 1;
    // slots: 8 ops on 6 slots -> 2.
    std::vector<Opcode> ops(6, Opcode::FAdd);
    ops.push_back(Opcode::Load);
    ops.push_back(Opcode::Store);
    EXPECT_EQ(packedHighWater(m, ops), 3);
}

TEST(BinPack, ToyMachineVectorIssueLimit)
{
    Machine m = toyMachine();
    std::vector<Opcode> ops = {Opcode::VLoad, Opcode::VLoad,
                               Opcode::VFMul};
    // Three vector ops, one vector issue per cycle.
    EXPECT_EQ(packedHighWater(m, ops), 3);
    // Three scalar ops fill one cycle of three slots.
    std::vector<Opcode> scal = {Opcode::Load, Opcode::Load,
                                Opcode::FMul};
    EXPECT_EQ(packedHighWater(m, scal), 1);
}

TEST(BinPack, LongReservationsPlaceFirstWithinEqualFreedom)
{
    // Longest-processing-time refinement: a late 4-cycle divide on an
    // already-balanced pair of FP units would strand cycles that
    // single-cycle ops can absorb; placing big blocks first keeps the
    // high-water mark at the balanced optimum.
    Machine m = paperMachine();
    std::vector<Opcode> bag;
    for (int i = 0; i < 16; ++i)
        bag.push_back(Opcode::FAdd);
    bag.push_back(Opcode::FDiv);
    bag.push_back(Opcode::FDiv);
    // Total FP load: 16 + 2*4 = 24 on 2 units -> optimum 12.
    EXPECT_EQ(packedHighWater(m, bag), 12);

    std::vector<int> order = packingOrder(m, bag);
    // Both divides come before every single-cycle FP op.
    EXPECT_EQ(bag[static_cast<size_t>(order[0])], Opcode::FDiv);
    EXPECT_EQ(bag[static_cast<size_t>(order[1])], Opcode::FDiv);
}

TEST(BinPack, EmptyReservationOpsAreFree)
{
    Machine m = toyMachine();
    std::vector<Opcode> ops(10, Opcode::VPack);
    EXPECT_EQ(packedHighWater(m, ops), 0);
}

} // anonymous namespace
} // namespace selvec
