/**
 * @file
 * Unit tests for the structured error-handling layer: Status /
 * Expected<T> semantics and their propagation through the recoverable
 * pipeline entry points (tryParseLir, verifyLoopStatus,
 * Machine::validateStatus, tryCompileLoop, tryRunReference,
 * tryMakeSuite).
 */

#include <gtest/gtest.h>

#include "driver/driver.hh"
#include "ir/verifier.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "workloads/workloads.hh"

namespace selvec
{
namespace
{

const char *kDotProduct = R"(
array X f64 4096
array Y f64 4096

loop dot {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        y = load Y[i]
        t = fmul x y
        s1 = fadd s t
    }
    liveout s1
}
)";

TEST(Status, SuccessIsOk)
{
    Status st = Status::success();
    EXPECT_TRUE(st.ok());
    EXPECT_TRUE(static_cast<bool>(st));
    EXPECT_EQ(st.code(), ErrorCode::Ok);
    EXPECT_EQ(st.str(), "ok");
}

TEST(Status, ErrorCarriesCodeStageMessage)
{
    Status st = Status::error(ErrorCode::PartitionFailed, "partition",
                              "analysis mismatch");
    EXPECT_FALSE(st.ok());
    EXPECT_FALSE(static_cast<bool>(st));
    EXPECT_EQ(st.code(), ErrorCode::PartitionFailed);
    EXPECT_EQ(st.stage(), "partition");
    EXPECT_EQ(st.message(), "analysis mismatch");
    EXPECT_EQ(st.str(),
              "[partition] partition-failed: analysis mismatch");
}

TEST(Status, ErrorWithOkCodeBecomesInternal)
{
    Status st = Status::error(ErrorCode::Ok, "stage", "oops");
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::Internal);
}

TEST(Status, EveryCodeHasAName)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::InvalidInput),
                 "invalid-input");
    EXPECT_STREQ(errorCodeName(ErrorCode::VerifyFailed),
                 "verify-failed");
    EXPECT_STREQ(errorCodeName(ErrorCode::ScheduleBudgetExhausted),
                 "schedule-budget-exhausted");
    EXPECT_STREQ(errorCodeName(ErrorCode::PartitionFailed),
                 "partition-failed");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
    EXPECT_STREQ(errorCodeName(ErrorCode::DeadlineExceeded),
                 "deadline-exceeded");
    EXPECT_STREQ(errorCodeName(ErrorCode::Cancelled), "cancelled");
    EXPECT_STREQ(errorCodeName(ErrorCode::WatchdogTripped),
                 "watchdog-tripped");
}

TEST(Expected, HoldsValue)
{
    Expected<int> e(7);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e.value(), 7);
    EXPECT_TRUE(e.status().ok());
}

TEST(Expected, HoldsStatus)
{
    Expected<int> e(
        Status::error(ErrorCode::InvalidInput, "stage", "bad"));
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.status().code(), ErrorCode::InvalidInput);
}

TEST(Expected, TakeValueMoves)
{
    Expected<std::string> e(std::string("payload"));
    std::string s = e.takeValue();
    EXPECT_EQ(s, "payload");
}

TEST(StatusPropagation, ParseFailureIsInvalidInput)
{
    Expected<Module> m = tryParseLir("loop { nonsense");
    ASSERT_FALSE(m.ok());
    EXPECT_EQ(m.status().code(), ErrorCode::InvalidInput);
    EXPECT_EQ(m.status().stage(), "lir-parse");
    EXPECT_FALSE(m.status().message().empty());
}

TEST(StatusPropagation, ParseSuccessYieldsModule)
{
    Expected<Module> m = tryParseLir(kDotProduct);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m.value().loops.size(), 1u);
}

TEST(StatusPropagation, VerifierFailureIsVerifyFailed)
{
    Module module = parseLirOrDie(kDotProduct);
    Loop loop = module.loops.front();
    loop.coverage = 0;   // structurally invalid
    Status st = verifyLoopStatus(module.arrays, loop);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::VerifyFailed);
    EXPECT_EQ(st.stage(), "ir-verify");
    EXPECT_NE(st.message().find("dot"), std::string::npos);
}

TEST(StatusPropagation, BrokenMachineIsInvalidInput)
{
    Machine machine = toyMachine();
    machine.vectorLength = 1;
    Status st = machine.validateStatus();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::InvalidInput);
    EXPECT_EQ(st.stage(), "machine");
}

TEST(StatusPropagation, CompileRejectsBrokenLoop)
{
    Module module = parseLirOrDie(kDotProduct);
    Loop loop = module.loops.front();
    loop.coverage = 0;
    ArrayTable arrays = module.arrays;
    Expected<CompiledProgram> program = tryCompileLoop(
        loop, arrays, toyMachine(), Technique::Selective);
    ASSERT_FALSE(program.ok());
    EXPECT_EQ(program.status().code(), ErrorCode::VerifyFailed);
}

TEST(StatusPropagation, ExhaustedIiSearchIsScheduleBudget)
{
    Module module = parseLirOrDie(kDotProduct);
    ArrayTable arrays = module.arrays;
    DriverOptions options;
    // An impossible search window: give up below MII with no budget.
    options.scheduling.budgetFactor = 0;
    options.scheduling.maxIiFactor = 1;
    options.scheduling.maxIiSlack = 0;
    Expected<CompiledProgram> program =
        tryCompileLoop(module.loops.front(), arrays, toyMachine(),
                       Technique::ModuloOnly, options);
    ASSERT_FALSE(program.ok());
    EXPECT_EQ(program.status().code(),
              ErrorCode::ScheduleBudgetExhausted);
    EXPECT_EQ(program.status().stage(), "modsched");
    // Satellite: the scheduler failure names the search window, the
    // MII decomposition and the exhausted budget.
    const std::string msg = program.status().message();
    EXPECT_NE(msg.find("MII"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ResMII"), std::string::npos) << msg;
    EXPECT_NE(msg.find("RecMII"), std::string::npos) << msg;
    EXPECT_NE(msg.find("budget"), std::string::npos) << msg;
}

TEST(StatusPropagation, FailedCompileLeavesArraysUntouched)
{
    Module module = parseLirOrDie(kDotProduct);
    ArrayTable arrays = module.arrays;
    int before = arrays.size();
    DriverOptions options;
    options.scheduling.budgetFactor = 0;
    options.scheduling.maxIiFactor = 1;
    options.scheduling.maxIiSlack = 0;
    Expected<CompiledProgram> program =
        tryCompileLoop(module.loops.front(), arrays, toyMachine(),
                       Technique::Traditional, options);
    ASSERT_FALSE(program.ok());
    EXPECT_EQ(arrays.size(), before);
}

TEST(StatusPropagation, UnboundLiveInIsInvalidInput)
{
    Module module = parseLirOrDie(kDotProduct);
    const Loop &loop = module.loops.front();

    LiveEnv empty;
    std::vector<std::string> missing = unboundLiveIns(loop, empty);
    ASSERT_EQ(missing.size(), 1u);
    EXPECT_EQ(missing[0], "s0");

    MemoryImage mem(module.arrays);
    mem.fillPattern(1);
    Expected<ExecResult> run = tryRunReference(
        loop, module.arrays, toyMachine(), mem, empty, 8);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), ErrorCode::InvalidInput);
    EXPECT_NE(run.status().message().find("s0"), std::string::npos);

    LiveEnv env;
    env["s0"] = RtVal::scalarF(0.5);
    Expected<ExecResult> ok_run = tryRunReference(
        loop, module.arrays, toyMachine(), mem, env, 8);
    EXPECT_TRUE(ok_run.ok());
}

TEST(StatusPropagation, UnknownSuiteIsInvalidInput)
{
    Expected<Suite> suite = tryMakeSuite("999.nonesuch");
    ASSERT_FALSE(suite.ok());
    EXPECT_EQ(suite.status().code(), ErrorCode::InvalidInput);
    EXPECT_EQ(suite.status().stage(), "workloads");

    Expected<Suite> known = tryMakeSuite("101.tomcatv");
    ASSERT_TRUE(known.ok());
    EXPECT_EQ(known.value().name, "101.tomcatv");
}

} // anonymous namespace
} // namespace selvec
