/**
 * @file
 * Unit tests for the traditional (Allen-Kennedy) vectorizer: loop
 * distribution, scalar expansion, fusion, aggregation of strided
 * operands, and the bailout rule.
 */

#include <gtest/gtest.h>

#include "lir/lir.hh"
#include "machine/machine.hh"
#include "vectorize/traditional.hh"

namespace selvec
{
namespace
{

Module
parse(const char *text)
{
    ParseResult pr = parseLir(text);
    EXPECT_TRUE(pr.ok) << pr.error;
    return std::move(pr.module);
}

const char *kDot = R"(
array X f64 256
array Y f64 256
loop dot {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        y = load Y[i]
        t = fmul x y
        s1 = fadd s t
    }
    liveout s1
}
)";

TEST(Traditional, DotProductDistributes)
{
    Module m = parse(kDot);
    Machine mach = paperMachine();
    DistributedLoops dist =
        traditionalVectorize(m.loops[0], m.arrays, mach, 512);
    EXPECT_TRUE(dist.distributed);
    ASSERT_EQ(dist.loops.size(), 2u);
    EXPECT_EQ(dist.vectorLoopCount, 1);
    EXPECT_EQ(dist.scalarLoopCount, 1);
    // The vector loop runs first (it feeds the reduction).
    EXPECT_TRUE(dist.loops[0].vectorized);
    EXPECT_EQ(dist.loops[0].main.coverage, 2);
    EXPECT_FALSE(dist.loops[1].vectorized);
    EXPECT_EQ(dist.loops[1].main.coverage, 1);
}

TEST(Traditional, ScalarExpansionThroughSynthesizedArray)
{
    Module m = parse(kDot);
    Machine mach = paperMachine();
    int arrays_before = m.arrays.size();
    DistributedLoops dist =
        traditionalVectorize(m.loops[0], m.arrays, mach, 512);
    ASSERT_EQ(m.arrays.size(), arrays_before + 1);
    const ArrayInfo &temp = m.arrays[arrays_before];
    EXPECT_TRUE(temp.synthesized);
    EXPECT_GE(temp.size, 512);

    // Producer loop stores the expanded value; consumer reloads it.
    bool producer_stores = false;
    for (const Operation &op : dist.loops[0].cleanup.ops) {
        producer_stores |= op.isStore() &&
                           op.ref.array == arrays_before;
    }
    EXPECT_TRUE(producer_stores);
    bool consumer_loads = false;
    for (const Operation &op : dist.loops[1].main.ops) {
        consumer_loads |= op.opcode == Opcode::Load &&
                          op.ref.array == arrays_before;
    }
    EXPECT_TRUE(consumer_loads);
}

TEST(Traditional, FullyVectorizableLoopStaysWhole)
{
    Module m = parse(R"(
array A f64 256
array B f64 256
loop t {
    livein c f64
    body {
        x = load A[i]
        y = fmul x c
        store B[i] = y
    }
}
)");
    Machine mach = paperMachine();
    DistributedLoops dist =
        traditionalVectorize(m.loops[0], m.arrays, mach, 512);
    EXPECT_FALSE(dist.distributed);
    ASSERT_EQ(dist.loops.size(), 1u);
    EXPECT_TRUE(dist.loops[0].vectorized);
    EXPECT_EQ(dist.loops[0].main.coverage, 2);
}

TEST(Traditional, NothingVectorizableReturnsOriginal)
{
    Module m = parse(R"(
array A f64 1024
loop t {
    body {
        x = load A[3i]
        y = fneg x
        store A[3i + 1] = y
    }
}
)");
    Machine mach = paperMachine();
    DistributedLoops dist =
        traditionalVectorize(m.loops[0], m.arrays, mach, 2048);
    EXPECT_FALSE(dist.distributed);
    ASSERT_EQ(dist.loops.size(), 1u);
    EXPECT_FALSE(dist.loops[0].vectorized);
    EXPECT_EQ(dist.loops[0].main.numOps(), 3);
}

TEST(Traditional, StridedOperandsAggregatedThroughMemory)
{
    // The strided load feeds vectorizable compute: distribution puts
    // the strided access in a scalar loop that stages values into a
    // contiguous temporary.
    Module m = parse(R"(
array A f64 2048
array B f64 256
loop t {
    livein c f64
    body {
        x = load A[4i]
        y = fmul x c
        z = fadd y c
        store B[i] = z
    }
}
)");
    Machine mach = paperMachine();
    DistributedLoops dist =
        traditionalVectorize(m.loops[0], m.arrays, mach, 512);
    EXPECT_TRUE(dist.distributed);
    ASSERT_EQ(dist.loops.size(), 2u);
    EXPECT_FALSE(dist.loops[0].vectorized);   // gather loop
    EXPECT_TRUE(dist.loops[1].vectorized);    // compute loop
}

TEST(Traditional, FusionKeepsAdjacentVectorComponentsTogether)
{
    // Two independent vectorizable chains: fusion produces ONE vector
    // loop, not two.
    Module m = parse(R"(
array A f64 256
array B f64 256
array C f64 256
array D f64 256
loop t {
    livein c f64
    body {
        x = load A[i]
        y = fmul x c
        store B[i] = y
        u = load C[i]
        v = fadd u c
        store D[i] = v
    }
}
)");
    Machine mach = paperMachine();
    DistributedLoops dist =
        traditionalVectorize(m.loops[0], m.arrays, mach, 512);
    ASSERT_EQ(dist.loops.size(), 1u);
    EXPECT_TRUE(dist.loops[0].vectorized);
}

TEST(Traditional, CarriedEscapeBailsOut)
{
    // The carried value's previous iteration feeds an op outside its
    // recurrence component: distribution would need shifted
    // expansion; the vectorizer declines.
    Module m = parse(R"(
array A f64 256
array B f64 256
loop t {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load A[i]
        s1 = fadd s x
        esc = fmul s x
        store B[i] = esc
    }
    liveout s1
}
)");
    Machine mach = paperMachine();
    DistributedLoops dist =
        traditionalVectorize(m.loops[0], m.arrays, mach, 512);
    EXPECT_FALSE(dist.distributed);
    ASSERT_EQ(dist.loops.size(), 1u);
    EXPECT_FALSE(dist.loops[0].vectorized);
}

TEST(Traditional, LiveOutsRouteToOwningLoop)
{
    Module m = parse(kDot);
    Machine mach = paperMachine();
    DistributedLoops dist =
        traditionalVectorize(m.loops[0], m.arrays, mach, 512);
    // s1 lives in the scalar (reduction) loop.
    ASSERT_EQ(dist.loops.size(), 2u);
    const Loop &scalar = dist.loops[1].main;
    ASSERT_EQ(scalar.liveOuts.size(), 1u);
    EXPECT_EQ(scalar.valueInfo(scalar.liveOuts[0]).name, "s1");
    EXPECT_TRUE(dist.loops[0].main.liveOuts.empty());
}

} // anonymous namespace
} // namespace selvec
