/**
 * @file
 * Unit tests for the compilation driver and the suite evaluator.
 */

#include <gtest/gtest.h>

#include "driver/evaluate.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "workloads/workloads.hh"

namespace selvec
{
namespace
{

const char *kSaxpy = R"(
array X f64 300
array Y f64 300
loop saxpy {
    livein a f64
    body {
        x = load X[i]
        y = load Y[i]
        ax = fmul a x
        s = fadd ax y
        store Y[i] = s
    }
}
)";

TEST(Driver, CompileProducesMainAndCleanup)
{
    Module m = parseLirOrDie(kSaxpy);
    Machine mach = paperMachine();
    for (Technique t : {Technique::ModuloOnly, Technique::Full,
                        Technique::Selective}) {
        ArrayTable arrays = m.arrays;
        CompiledProgram p = compileLoop(m.loops[0], arrays, mach, t);
        ASSERT_EQ(p.loops.size(), 1u) << techniqueName(t);
        EXPECT_EQ(p.loops[0].coverage, 2);
        EXPECT_EQ(p.loops[0].cleanup.coverage, 1);
        EXPECT_GT(p.loops[0].mainSchedule.ii, 0);
        EXPECT_GT(p.loops[0].cleanupSchedule.ii, 0);
    }
}

TEST(Driver, TraditionalMayProduceSeveralLoops)
{
    Module m = parseLirOrDie(R"(
array X f64 300
loop t {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        x2 = fmul x x
        s1 = fadd s x2
    }
    liveout s1
}
)");
    Machine mach = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, mach, Technique::Traditional);
    EXPECT_EQ(p.loops.size(), 2u);
}

TEST(Driver, PerIterationMetricsUseCoverage)
{
    Module m = parseLirOrDie(kSaxpy);
    Machine mach = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, mach, Technique::ModuloOnly);
    EXPECT_DOUBLE_EQ(
        p.iiPerIteration(),
        static_cast<double>(p.loops[0].mainSchedule.ii) / 2.0);
    EXPECT_DOUBLE_EQ(p.resMiiPerIteration(),
                     static_cast<double>(p.loops[0].mainResMii) / 2.0);
}

TEST(Driver, RemainderRunsCleanup)
{
    Module m = parseLirOrDie(kSaxpy);
    Machine mach = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, mach, Technique::Selective);

    LiveEnv env;
    env["a"] = RtVal::scalarF(1.25);

    for (int64_t n : {0, 1, 2, 3, 63, 64, 65}) {
        MemoryImage mem(arrays);
        mem.fillPattern(11);
        ExecResult got =
            runCompiled(p, arrays, mach, mem, env, n);

        MemoryImage ref(arrays);
        ref.fillPattern(11);
        runReference(m.loops[0], arrays, mach, ref, env, n);
        EXPECT_EQ(mem.diff(ref), "") << "n=" << n;
        if (n > 0) {
            EXPECT_GT(got.cycles, 0);
        }
    }
}

TEST(Driver, ReductionChainsAcrossMainAndCleanup)
{
    Module m = parseLirOrDie(R"(
array X f64 300
loop t {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        s1 = fadd s x
    }
    liveout s1
}
)");
    Machine mach = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, mach, Technique::ModuloOnly);

    LiveEnv env;
    env["s0"] = RtVal::scalarF(2.0);
    // Odd trip count: the final element flows through the cleanup.
    MemoryImage mem(arrays);
    mem.fillPattern(13);
    ExecResult got = runCompiled(p, arrays, mach, mem, env, 65);

    MemoryImage ref(arrays);
    ref.fillPattern(13);
    ExecResult want =
        runReference(m.loops[0], arrays, mach, ref, env, 65);
    ASSERT_TRUE(got.env.count("s1"));
    EXPECT_EQ(got.env.at("s1"), want.env.at("s1"));
}

TEST(Driver, ResourceLimitedFlag)
{
    Machine mach = paperMachine();
    {
        Module m = parseLirOrDie(kSaxpy);
        ArrayTable arrays = m.arrays;
        CompiledProgram p = compileLoop(m.loops[0], arrays, mach,
                                        Technique::ModuloOnly);
        EXPECT_TRUE(p.resourceLimited);
    }
    {
        // A long fdiv recurrence is recurrence-bound.
        Module m = parseLirOrDie(R"(
array X f64 300
loop t {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        s1 = fdiv s x
    }
    liveout s1
}
)");
        ArrayTable arrays = m.arrays;
        CompiledProgram p = compileLoop(m.loops[0], arrays, mach,
                                        Technique::ModuloOnly);
        EXPECT_FALSE(p.resourceLimited);
    }
}

TEST(Driver, InvocationOverheadCharged)
{
    Module m = parseLirOrDie(kSaxpy);
    Machine mach = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, mach, Technique::ModuloOnly);
    LiveEnv env;
    env["a"] = RtVal::scalarF(1.0);
    MemoryImage mem(arrays);
    ExecResult r0 = runCompiled(p, arrays, mach, mem, env, 0);
    EXPECT_EQ(r0.cycles, mach.invocationOverhead);
}

TEST(Evaluate, SuiteReportsAreConsistent)
{
    Suite suite = dotProductSuite();
    Machine mach = paperMachine();
    SuiteReport base =
        evaluateSuite(suite, mach, Technique::ModuloOnly);
    ASSERT_EQ(base.loops.size(), 1u);
    EXPECT_GT(base.totalCycles, 0);
    EXPECT_EQ(base.loops[0].weightedCycles,
              base.loops[0].cyclesPerInvocation *
                  base.loops[0].invocations);
    EXPECT_EQ(base.totalCycles, base.loops[0].weightedCycles);
    EXPECT_DOUBLE_EQ(speedupOver(base, base), 1.0);
}

TEST(Evaluate, SelectiveNeverSlowerOnDot)
{
    Suite suite = dotProductSuite();
    Machine mach = paperMachine();
    SuiteReport base =
        evaluateSuite(suite, mach, Technique::ModuloOnly);
    SuiteReport sel =
        evaluateSuite(suite, mach, Technique::Selective);
    EXPECT_GE(speedupOver(base, sel), 0.95);
}

} // anonymous namespace
} // namespace selvec
