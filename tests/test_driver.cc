/**
 * @file
 * Unit tests for the compilation driver and the suite evaluator.
 */

#include <gtest/gtest.h>

#include "driver/evaluate.hh"
#include "driver/reportjson.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "support/faultinject.hh"
#include "workloads/workloads.hh"

namespace selvec
{
namespace
{

const char *kSaxpy = R"(
array X f64 300
array Y f64 300
loop saxpy {
    livein a f64
    body {
        x = load X[i]
        y = load Y[i]
        ax = fmul a x
        s = fadd ax y
        store Y[i] = s
    }
}
)";

TEST(Driver, CompileProducesMainAndCleanup)
{
    Module m = parseLirOrDie(kSaxpy);
    Machine mach = paperMachine();
    for (Technique t : {Technique::ModuloOnly, Technique::Full,
                        Technique::Selective}) {
        ArrayTable arrays = m.arrays;
        CompiledProgram p = compileLoop(m.loops[0], arrays, mach, t);
        ASSERT_EQ(p.loops.size(), 1u) << techniqueName(t);
        EXPECT_EQ(p.loops[0].coverage, 2);
        EXPECT_EQ(p.loops[0].cleanup.coverage, 1);
        EXPECT_GT(p.loops[0].mainSchedule.ii, 0);
        EXPECT_GT(p.loops[0].cleanupSchedule.ii, 0);
    }
}

TEST(Driver, TraditionalMayProduceSeveralLoops)
{
    Module m = parseLirOrDie(R"(
array X f64 300
loop t {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        x2 = fmul x x
        s1 = fadd s x2
    }
    liveout s1
}
)");
    Machine mach = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, mach, Technique::Traditional);
    EXPECT_EQ(p.loops.size(), 2u);
}

TEST(Driver, PerIterationMetricsUseCoverage)
{
    Module m = parseLirOrDie(kSaxpy);
    Machine mach = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, mach, Technique::ModuloOnly);
    EXPECT_DOUBLE_EQ(
        p.iiPerIteration(),
        static_cast<double>(p.loops[0].mainSchedule.ii) / 2.0);
    EXPECT_DOUBLE_EQ(p.resMiiPerIteration(),
                     static_cast<double>(p.loops[0].mainResMii) / 2.0);
}

TEST(Driver, RemainderRunsCleanup)
{
    Module m = parseLirOrDie(kSaxpy);
    Machine mach = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, mach, Technique::Selective);

    LiveEnv env;
    env["a"] = RtVal::scalarF(1.25);

    for (int64_t n : {0, 1, 2, 3, 63, 64, 65}) {
        MemoryImage mem(arrays);
        mem.fillPattern(11);
        ExecResult got =
            runCompiled(p, arrays, mach, mem, env, n);

        MemoryImage ref(arrays);
        ref.fillPattern(11);
        runReference(m.loops[0], arrays, mach, ref, env, n);
        EXPECT_EQ(mem.diff(ref), "") << "n=" << n;
        if (n > 0) {
            EXPECT_GT(got.cycles, 0);
        }
    }
}

TEST(Driver, ReductionChainsAcrossMainAndCleanup)
{
    Module m = parseLirOrDie(R"(
array X f64 300
loop t {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        s1 = fadd s x
    }
    liveout s1
}
)");
    Machine mach = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, mach, Technique::ModuloOnly);

    LiveEnv env;
    env["s0"] = RtVal::scalarF(2.0);
    // Odd trip count: the final element flows through the cleanup.
    MemoryImage mem(arrays);
    mem.fillPattern(13);
    ExecResult got = runCompiled(p, arrays, mach, mem, env, 65);

    MemoryImage ref(arrays);
    ref.fillPattern(13);
    ExecResult want =
        runReference(m.loops[0], arrays, mach, ref, env, 65);
    ASSERT_TRUE(got.env.count("s1"));
    EXPECT_EQ(got.env.at("s1"), want.env.at("s1"));
}

TEST(Driver, ResourceLimitedFlag)
{
    Machine mach = paperMachine();
    {
        Module m = parseLirOrDie(kSaxpy);
        ArrayTable arrays = m.arrays;
        CompiledProgram p = compileLoop(m.loops[0], arrays, mach,
                                        Technique::ModuloOnly);
        EXPECT_TRUE(p.resourceLimited);
    }
    {
        // A long fdiv recurrence is recurrence-bound.
        Module m = parseLirOrDie(R"(
array X f64 300
loop t {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        s1 = fdiv s x
    }
    liveout s1
}
)");
        ArrayTable arrays = m.arrays;
        CompiledProgram p = compileLoop(m.loops[0], arrays, mach,
                                        Technique::ModuloOnly);
        EXPECT_FALSE(p.resourceLimited);
    }
}

TEST(Driver, InvocationOverheadCharged)
{
    Module m = parseLirOrDie(kSaxpy);
    Machine mach = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, mach, Technique::ModuloOnly);
    LiveEnv env;
    env["a"] = RtVal::scalarF(1.0);
    MemoryImage mem(arrays);
    ExecResult r0 = runCompiled(p, arrays, mach, mem, env, 0);
    EXPECT_EQ(r0.cycles, mach.invocationOverhead);
}

TEST(Evaluate, SuiteReportsAreConsistent)
{
    Suite suite = dotProductSuite();
    Machine mach = paperMachine();
    SuiteReport base =
        evaluateSuite(suite, mach, Technique::ModuloOnly);
    ASSERT_EQ(base.loops.size(), 1u);
    EXPECT_GT(base.totalCycles, 0);
    EXPECT_EQ(base.loops[0].weightedCycles,
              base.loops[0].cyclesPerInvocation *
                  base.loops[0].invocations);
    EXPECT_EQ(base.totalCycles, base.loops[0].weightedCycles);
    EXPECT_DOUBLE_EQ(speedupOver(base, base), 1.0);
}

TEST(Evaluate, SelectiveNeverSlowerOnDot)
{
    Suite suite = dotProductSuite();
    Machine mach = paperMachine();
    SuiteReport base =
        evaluateSuite(suite, mach, Technique::ModuloOnly);
    SuiteReport sel =
        evaluateSuite(suite, mach, Technique::Selective);
    EXPECT_GE(speedupOver(base, sel), 0.95);
}

// ---------------------------------------------------------------------
// The machine-readable report surface.

TEST(ReportJson, CompiledProgramReportsIiAtLeastResMii)
{
    Module m = parseLirOrDie(kSaxpy);
    Machine mach = paperMachine();
    for (Technique t : {Technique::ModuloOnly, Technique::Full,
                        Technique::Selective}) {
        ArrayTable arrays = m.arrays;
        CompiledProgram p = compileLoop(m.loops[0], arrays, mach, t);
        JsonValue json = jsonOfCompiledProgram(p);

        EXPECT_EQ(json.find("technique")->stringValue(),
                  techniqueName(t));
        double ii = json.find("ii_per_iter")->numberValue();
        double res = json.find("res_mii_per_iter")->numberValue();
        EXPECT_GT(ii, 0.0) << techniqueName(t);
        EXPECT_GE(ii, res) << techniqueName(t);

        const JsonValue *loops = json.find("loops");
        ASSERT_NE(loops, nullptr);
        ASSERT_GT(loops->size(), 0u);
        for (const JsonValue &cl : loops->items()) {
            // The scheduler can never beat the resource bound.
            EXPECT_GE(cl.find("ii")->intValue(),
                      cl.find("res_mii")->intValue())
                << techniqueName(t);
            EXPECT_GT(cl.find("coverage")->intValue(), 0);
        }
    }
}

TEST(ReportJson, SuiteComparisonCarriesSpeedupAndMiis)
{
    Suite suite = dotProductSuite();
    Machine mach = paperMachine();
    SuiteReport base =
        evaluateSuite(suite, mach, Technique::ModuloOnly);
    SuiteReport sel =
        evaluateSuite(suite, mach, Technique::Selective);
    JsonValue json = jsonOfSuiteComparison(base, {sel});

    ASSERT_EQ(json.find("techniques")->size(), 1u);
    const JsonValue &tech = json.find("techniques")->items()[0];
    EXPECT_EQ(tech.find("technique")->stringValue(), "selective");
    EXPECT_DOUBLE_EQ(tech.find("speedup")->numberValue(),
                     speedupOver(base, sel));
    for (const JsonValue &loop : tech.find("loops")->items()) {
        double ii = loop.find("ii_per_iter")->numberValue();
        EXPECT_GE(ii, loop.find("res_mii_per_iter")->numberValue());
        EXPECT_GT(loop.find("weighted_cycles")->intValue(), 0);
        EXPECT_GT(loop.find("speedup")->numberValue(), 0.0);
    }

    // The emitted document survives a serialize/parse round-trip.
    Expected<JsonValue> back = parseJson(json.dump(2));
    ASSERT_TRUE(back.ok()) << back.status().str();
    EXPECT_EQ(back.value(), json);
}

TEST(ReportJson, CompileReportRecordsDegradationTier)
{
    Module m = parseLirOrDie(kSaxpy);
    ArrayTable arrays = m.arrays;

    // Undisturbed: one successful attempt, no degradation.
    ResilientCompile clean = compileLoopResilient(
        m.loops[0], arrays, paperMachine(), Technique::Selective);
    ASSERT_TRUE(clean.ok());
    JsonValue cj = jsonOfCompileReport(clean.report);
    EXPECT_EQ(cj.find("requested")->stringValue(), "selective");
    EXPECT_EQ(cj.find("final_technique")->stringValue(), "selective");
    EXPECT_FALSE(cj.find("degraded")->boolValue());
    EXPECT_TRUE(cj.find("succeeded")->boolValue());
    ASSERT_EQ(cj.find("attempts")->size(), 1u);

    // Persistent partitioner fault: the selective tier fails, the
    // chain lands on full vectorization, and the JSON names the tier
    // actually taken.
    Expected<FaultPlan> plan = parseFaultPlan("partition.kl:*");
    ASSERT_TRUE(plan.ok());
    ResilientCompile degraded = [&] {
        ScopedFaultPlan scoped(plan.takeValue());
        return compileLoopResilient(m.loops[0], arrays,
                                    paperMachine(),
                                    Technique::Selective);
    }();
    ASSERT_TRUE(degraded.ok()) << degraded.report.str();
    JsonValue dj = jsonOfCompileReport(degraded.report);
    EXPECT_TRUE(dj.find("degraded")->boolValue());
    EXPECT_EQ(dj.find("requested")->stringValue(), "selective");
    EXPECT_EQ(dj.find("final_technique")->stringValue(), "full");
    EXPECT_FALSE(dj.find("scalar_fallback")->boolValue());
    const JsonValue *attempts = dj.find("attempts");
    ASSERT_GE(attempts->size(), 2u);
    const JsonValue &first = attempts->items()[0];
    EXPECT_EQ(first.find("tier")->stringValue(), "selective");
    EXPECT_FALSE(first.find("ok")->boolValue());
    EXPECT_EQ(first.find("error_code")->stringValue(),
              "partition-failed");
    const JsonValue &last =
        attempts->items()[attempts->size() - 1];
    EXPECT_TRUE(last.find("ok")->boolValue());
    EXPECT_FALSE(last.find("fallback_reason")->stringValue().empty());
}

} // anonymous namespace
} // namespace selvec
