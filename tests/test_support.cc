/**
 * @file
 * Unit tests for the support library: formatting and the
 * deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "support/logging.hh"
#include "support/parsenum.hh"
#include "support/random.hh"

namespace selvec
{
namespace
{

TEST(Strfmt, FormatsLikePrintf)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(strfmt("%05d", 7), "00007");
    EXPECT_EQ(strfmt("%.2f", 1.5), "1.50");
}

TEST(Strfmt, EmptyAndLong)
{
    EXPECT_EQ(strfmt("%s", ""), "");
    std::string big(500, 'a');
    EXPECT_EQ(strfmt("%s", big.c_str()), big);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differences = 0;
    for (int i = 0; i < 16; ++i)
        differences += a.next() != b.next() ? 1 : 0;
    EXPECT_GT(differences, 0);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(7);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.range(-2, 3);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    // With 1000 draws every value of a 6-element range appears.
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, DegenerateRange)
{
    Rng rng(9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.range(5, 5), 5);
}

TEST(Rng, UnitInHalfOpenInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.unit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng rng(0);
    EXPECT_NE(rng.next(), 0u);
}

TEST(ParseNonNegInt, AcceptsPlainDecimals)
{
    int64_t v = -1;
    EXPECT_TRUE(parseNonNegInt("0", &v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(parseNonNegInt("8", &v));
    EXPECT_EQ(v, 8);
    EXPECT_TRUE(parseNonNegInt("1234567890123", &v));
    EXPECT_EQ(v, 1234567890123);
    EXPECT_TRUE(parseNonNegInt("007", &v));
    EXPECT_EQ(v, 7);
    EXPECT_TRUE(parseNonNegInt("9223372036854775807", &v));
    EXPECT_EQ(v, INT64_MAX);
}

TEST(ParseNonNegInt, RejectsEverythingAtoiWouldSwallow)
{
    // The std::atoi failure modes this parser exists to close: each
    // of these silently parsed to 0 (or a truncated prefix) before.
    int64_t v = 42;
    EXPECT_FALSE(parseNonNegInt("", &v));
    EXPECT_FALSE(parseNonNegInt(nullptr, &v));
    EXPECT_FALSE(parseNonNegInt("abc", &v));
    EXPECT_FALSE(parseNonNegInt("3x", &v));       // trailing garbage
    EXPECT_FALSE(parseNonNegInt("x3", &v));
    EXPECT_FALSE(parseNonNegInt("-1", &v));       // negative
    EXPECT_FALSE(parseNonNegInt("+3", &v));       // no sign allowed
    EXPECT_FALSE(parseNonNegInt(" 3", &v));       // no whitespace
    EXPECT_FALSE(parseNonNegInt("3 ", &v));
    EXPECT_FALSE(parseNonNegInt("3.5", &v));
    EXPECT_FALSE(parseNonNegInt("0x10", &v));
    EXPECT_EQ(v, 42) << "out must stay untouched on failure";
}

TEST(ParseNonNegInt, RejectsOverflow)
{
    int64_t v = 42;
    EXPECT_FALSE(parseNonNegInt("9223372036854775808", &v));
    EXPECT_FALSE(parseNonNegInt("99999999999999999999", &v));
    EXPECT_EQ(v, 42);
}

} // anonymous namespace
} // namespace selvec
