/**
 * @file
 * Tests for the register pressure (MaxLive) analysis.
 */

#include <gtest/gtest.h>

#include "analysis/depgraph.hh"
#include "driver/driver.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "pipeline/regpressure.hh"

namespace selvec
{
namespace
{

RegPressure
pressureOf(const char *text, Technique technique)
{
    Module m = parseLirOrDie(text);
    Machine machine = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, machine, technique);
    return computeMaxLive(p.loops[0].main, p.loops[0].mainSchedule);
}

const char *kFpChain = R"(
array A f64 300
array B f64 300
loop t {
    livein c f64
    body {
        x = load A[i]
        a = fmul x c
        b = fadd a c
        d = fmul b b
        e = fadd d a
        store B[i] = e
    }
}
)";

TEST(RegPressure, ScalarLoopUsesNoVectorRegisters)
{
    RegPressure rp = pressureOf(kFpChain, Technique::ModuloOnly);
    EXPECT_EQ(rp.vector, 0);
    EXPECT_GT(rp.scalarFp, 0);
}

TEST(RegPressure, FullVectorizationMovesDemandToVectorFile)
{
    RegPressure scalar = pressureOf(kFpChain, Technique::ModuloOnly);
    RegPressure full = pressureOf(kFpChain, Technique::Full);
    EXPECT_GT(full.vector, 0);
    EXPECT_LT(full.scalarFp, scalar.scalarFp);
}

TEST(RegPressure, LongLatencyValuesCountAcrossStages)
{
    // A value produced by a load (latency 3) at II 1 overlaps itself
    // across stages: MaxLive must exceed the static value count / II.
    Module m = parseLirOrDie(R"(
array A f64 300
array B f64 300
loop t {
    body {
        x = load A[i]
        store B[i] = x
    }
}
)");
    Machine machine = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, machine, Technique::ModuloOnly);
    RegPressure rp =
        computeMaxLive(p.loops[0].main, p.loops[0].mainSchedule);
    // Two unrolled copies of x, each live for >= load latency cycles,
    // at a small II: several instances coexist.
    EXPECT_GE(rp.scalarFp, 2);
}

TEST(RegPressure, LiveInsAlwaysOccupyARegister)
{
    RegPressure rp = pressureOf(kFpChain, Technique::ModuloOnly);
    // 'c' holds an FP register for the whole loop on top of the
    // pipeline values.
    EXPECT_GE(rp.scalarFp, 2);
    // Lowering's __iv chain keeps at least one integer register.
    EXPECT_GE(rp.scalarInt, 1);
}

TEST(RegPressure, CarriedValueSpansTheBackEdge)
{
    Module m = parseLirOrDie(R"(
array A f64 300
loop t {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load A[i]
        s1 = fadd s x
    }
    liveout s1
}
)");
    Machine machine = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, machine, Technique::ModuloOnly);
    RegPressure rp =
        computeMaxLive(p.loops[0].main, p.loops[0].mainSchedule);
    // The accumulator is live through the whole kernel.
    EXPECT_GE(rp.scalarFp, 2);
}

TEST(Mve, FactorCoversLongestLifetime)
{
    // At II 1 with load latency 3, a loaded value lives >= 4 cycles:
    // a non-rotating machine must unroll the kernel several times.
    Module m = parseLirOrDie(R"(
array A f64 300
array B f64 300
loop t {
    body {
        x = load A[i]
        store B[i] = x
    }
}
)");
    Machine machine = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, machine, Technique::ModuloOnly);
    int64_t q = mveUnrollFactor(p.loops[0].main,
                                p.loops[0].mainSchedule);
    EXPECT_GE(q, 2);
}

TEST(Mve, RelaxedScheduleNeedsNoExpansion)
{
    // A recurrence-bound loop (II 4+) with short lifetimes fits in
    // one kernel copy.
    Module m = parseLirOrDie(R"(
array A f64 300
loop t {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load A[i]
        s1 = fadd s x
    }
    liveout s1
}
)");
    Machine machine = paperMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p =
        compileLoop(m.loops[0], arrays, machine, Technique::ModuloOnly);
    int64_t q = mveUnrollFactor(p.loops[0].main,
                                p.loops[0].mainSchedule);
    EXPECT_LE(q, 2);
    EXPECT_GE(q, 1);
}

} // anonymous namespace
} // namespace selvec
