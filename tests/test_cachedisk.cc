/**
 * @file
 * Tests for the persistent on-disk compile cache (DESIGN.md §11) and
 * the batch compile service built on it: entry addressing, value
 * round trips, the cold/warm byte-identity contract, corruption
 * quarantine, LRU eviction determinism, and concurrent access to a
 * shared cache directory from suite evaluation and serveBatch. The
 * `cachedisk` ctest label selects this binary; the TSan lane runs it
 * alongside the parallel subset.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <thread>
#include <vector>

#include "driver/compilecache.hh"
#include "driver/diskcache.hh"
#include "driver/driver.hh"
#include "driver/evaluate.hh"
#include "driver/repro.hh"
#include "driver/reportjson.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"
#include "service/serve.hh"
#include "support/stats.hh"
#include "workloads/workloads.hh"

namespace fs = std::filesystem;

namespace selvec
{
namespace
{

const char *const kDiskSaxpy = R"(
array X f64 4096
array Y f64 4096

loop disk_saxpy {
    livein a f64
    body {
        x = load X[i]
        y = load Y[i]
        ax = fmul a x
        s = fadd ax y
        store Y[i] = s
    }
}
)";

/**
 * Every test gets a fresh cache directory and a cold in-memory
 * cache; the disk layer is unconfigured again on the way out so
 * later tests (and other binaries' fixtures) see the default state.
 */
class CacheDiskTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasEnabled = compileCacheEnabled();
        compileCacheSetEnabled(true);
        compileCacheClear();
        dir = (fs::temp_directory_path() /
               (std::string("selvec_cachedisk_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name()))
                  .string();
        fs::remove_all(dir);
        diskCacheConfigure(dir);
        before = diskCacheCounters();
    }

    void
    TearDown() override
    {
        diskCacheConfigure("");
        fs::remove_all(dir);
        compileCacheClear();
        compileCacheSetEnabled(wasEnabled);
    }

    /** Counter movement since SetUp. */
    DiskCacheCounters
    delta() const
    {
        DiskCacheCounters now = diskCacheCounters();
        return {now.hit - before.hit, now.miss - before.miss,
                now.store - before.store, now.evict - before.evict,
                now.corrupt - before.corrupt};
    }

    std::string dir;
    DiskCacheCounters before;
    bool wasEnabled = true;
};

// ---------------------------------------------------------------------
// Addressing.

TEST_F(CacheDiskTest, HashMatchesFnv1aReference)
{
    // Published FNV-1a 64 vectors: the offset basis for "", and "a".
    EXPECT_EQ(diskCacheHash(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(diskCacheHash("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_NE(diskCacheHash("key-1"), diskCacheHash("key-2"));
}

TEST_F(CacheDiskTest, EntryPathShardsByHashPrefix)
{
    std::string path = diskCacheEntryPath("some canonical key");
    ASSERT_TRUE(path.rfind(dir, 0) == 0) << path;
    fs::path p(path);
    EXPECT_EQ(p.extension(), ".json");
    std::string stem = p.stem().string();
    EXPECT_EQ(stem.size(), 16u);
    // The shard directory is the first two hash characters.
    EXPECT_EQ(p.parent_path().filename().string(), stem.substr(0, 2));
    // Stable addressing: the same key maps to the same entry.
    EXPECT_EQ(path, diskCacheEntryPath("some canonical key"));
    EXPECT_NE(path, diskCacheEntryPath("a different key"));
}

// ---------------------------------------------------------------------
// Value round trips.

TEST_F(CacheDiskTest, CompileValueRoundTripsThroughJson)
{
    Module m = parseLirOrDie(kDiskSaxpy);
    Machine machine = paperMachine();
    for (Technique t :
         {Technique::ModuloOnly, Technique::Traditional,
          Technique::Full, Technique::Selective}) {
        CompileCacheValue value;
        value.arrays = m.arrays;
        Expected<CompiledProgram> compiled = tryCompileLoop(
            m.loops[0], value.arrays, machine, t);
        ASSERT_TRUE(compiled.ok()) << techniqueName(t);
        value.ok = true;
        value.program = compiled.takeValue();
        value.statsDelta.push_back(
            {"modsched.attempts", StatKind::Counter, 3, 0});

        JsonValue doc = jsonOfCompileCacheValue(value);
        Expected<JsonValue> reparsed = parseJson(doc.dump(2));
        ASSERT_TRUE(reparsed.ok());
        Expected<CompileCacheValue> back =
            compileCacheValueOfJson(reparsed.value());
        ASSERT_TRUE(back.ok())
            << techniqueName(t) << ": " << back.status().str();
        // Byte-stable: serializing the parsed value reproduces the
        // original document, and the program is bit-identical.
        EXPECT_EQ(jsonOfCompileCacheValue(back.value()).dump(),
                  doc.dump())
            << techniqueName(t);
        EXPECT_EQ(jsonOfCompiledProgram(back.value().program).dump(),
                  jsonOfCompiledProgram(value.program).dump());
    }

    // A negative entry (a failed compile) round-trips too.
    CompileCacheValue failed;
    failed.ok = false;
    failed.status = Status::error(ErrorCode::ScheduleBudgetExhausted,
                                  "modsched", "budget blown");
    failed.statsDelta.push_back(
        {"modsched.backtracks", StatKind::Counter, 7, 0});
    JsonValue doc = jsonOfCompileCacheValue(failed);
    Expected<CompileCacheValue> back = compileCacheValueOfJson(doc);
    ASSERT_TRUE(back.ok()) << back.status().str();
    EXPECT_FALSE(back.value().ok);
    EXPECT_EQ(back.value().status.code(),
              ErrorCode::ScheduleBudgetExhausted);
    EXPECT_EQ(jsonOfCompileCacheValue(back.value()).dump(),
              doc.dump());
}

TEST_F(CacheDiskTest, PublishedEntriesRoundTripFromDisk)
{
    Module m = parseLirOrDie(kDiskSaxpy);
    Machine machine = paperMachine();
    ArrayTable arrays = m.arrays;
    ASSERT_TRUE(tryCompileLoop(m.loops[0], arrays, machine,
                               Technique::Selective)
                    .ok());
    ASSERT_GT(delta().store, 0);

    // Every published entry — both the whole-compile and the nested
    // lower+schedule level — parses back to a payload that
    // re-serializes byte-identically.
    size_t compiles = 0, schedules = 0;
    for (const fs::directory_entry &shard : fs::directory_iterator(dir))
        for (const fs::directory_entry &file :
             fs::directory_iterator(shard.path())) {
            std::ifstream in(file.path());
            std::stringstream text;
            text << in.rdbuf();
            Expected<JsonValue> doc = parseJson(text.str());
            ASSERT_TRUE(doc.ok()) << file.path();
            EXPECT_EQ(doc.value().find("schema")->stringValue(),
                      kDiskCacheSchema);
            const JsonValue *payload = doc.value().find("payload");
            ASSERT_NE(payload, nullptr);
            std::string level =
                payload->find("level")->stringValue();
            if (level == "compile") {
                ++compiles;
                Expected<CompileCacheValue> v =
                    compileCacheValueOfJson(*payload);
                ASSERT_TRUE(v.ok()) << v.status().str();
                EXPECT_EQ(jsonOfCompileCacheValue(v.value()).dump(),
                          payload->dump());
            } else {
                ++schedules;
                ASSERT_EQ(level, "schedule");
                Expected<ScheduleCacheValue> v =
                    scheduleCacheValueOfJson(*payload);
                ASSERT_TRUE(v.ok()) << v.status().str();
                EXPECT_EQ(jsonOfScheduleCacheValue(v.value()).dump(),
                          payload->dump());
            }
        }
    EXPECT_GT(compiles, 0u);
    EXPECT_GT(schedules, 0u);
}

// ---------------------------------------------------------------------
// The persistence contract.

TEST_F(CacheDiskTest, WarmProcessLoadsFromDisk)
{
    Module m = parseLirOrDie(kDiskSaxpy);
    Machine machine = paperMachine();

    ArrayTable cold_arrays = m.arrays;
    Expected<CompiledProgram> cold = tryCompileLoop(
        m.loops[0], cold_arrays, machine, Technique::Selective);
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(lastCompileSource(), CompileSource::Compiled);
    ASSERT_GT(delta().store, 0);

    // A "new process": the in-memory cache is gone, the directory
    // persists. The compile is served from disk, bit-identically.
    compileCacheClear();
    int64_t hit0 = delta().hit;
    ArrayTable warm_arrays = m.arrays;
    Expected<CompiledProgram> warm = tryCompileLoop(
        m.loops[0], warm_arrays, machine, Technique::Selective);
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(lastCompileSource(), CompileSource::Disk);
    EXPECT_GT(delta().hit, hit0);
    EXPECT_EQ(jsonOfCompiledProgram(warm.value()).dump(),
              jsonOfCompiledProgram(cold.value()).dump());

    // Within the process the in-memory level answers first.
    ArrayTable third_arrays = m.arrays;
    ASSERT_TRUE(tryCompileLoop(m.loops[0], third_arrays, machine,
                               Technique::Selective)
                    .ok());
    EXPECT_EQ(lastCompileSource(), CompileSource::Memory);
}

TEST_F(CacheDiskTest, DiskHitReplaysStatsDelta)
{
    Module m = parseLirOrDie(kDiskSaxpy);
    Machine machine = paperMachine();

    StatsRegistry cold_stats;
    {
        ScopedStatsSink sink(cold_stats);
        ArrayTable arrays = m.arrays;
        ASSERT_TRUE(tryCompileLoop(m.loops[0], arrays, machine,
                                   Technique::Full)
                        .ok());
    }
    compileCacheClear();
    StatsRegistry warm_stats;
    {
        ScopedStatsSink sink(warm_stats);
        ArrayTable arrays = m.arrays;
        ASSERT_TRUE(tryCompileLoop(m.loops[0], arrays, machine,
                                   Technique::Full)
                        .ok());
    }
    EXPECT_EQ(lastCompileSource(), CompileSource::Disk);
    // The disk hit replays the recorded delta: merged reports do not
    // depend on which cache level (or which run) answered.
    EXPECT_EQ(cold_stats.toJson(false).dump(),
              warm_stats.toJson(false).dump());
}

/** The selvec-bench-v1 document for one suite, stats from `sink`. */
std::string
documentOf(const SuiteReport &base,
           const std::vector<SuiteReport> &techniques,
           const StatsRegistry &sink)
{
    JsonValue doc = benchDocument("test_cachedisk", "quick");
    JsonValue suites = JsonValue::array();
    suites.append(jsonOfSuiteComparison(base, techniques));
    doc.set("suites", std::move(suites));
    doc.set("stats", sink.toJson(false, "cache."));
    return doc.dump(2);
}

std::string
runSuiteDocument(const Suite &suite, const Machine &machine, int jobs)
{
    StatsRegistry sink;
    ScopedStatsSink scope(sink);
    EvaluateOptions options;
    options.jobs = jobs;
    SuiteReport base =
        evaluateSuite(suite, machine, Technique::ModuloOnly, options);
    SuiteReport full =
        evaluateSuite(suite, machine, Technique::Full, options);
    SuiteReport sel =
        evaluateSuite(suite, machine, Technique::Selective, options);
    return documentOf(base, {full, sel}, sink);
}

Suite
quickSuite()
{
    Suite suite = makeSuite("171.swim");
    for (WorkloadLoop &wl : suite.loops) {
        wl.tripCount = std::min<int64_t>(wl.tripCount, 96);
        wl.invocations = std::max<int64_t>(1, wl.invocations / 4);
    }
    return suite;
}

TEST_F(CacheDiskTest, SuiteDocumentsColdAndWarmAreByteIdentical)
{
    Suite suite = quickSuite();
    Machine machine = paperMachine();

    std::string cold = runSuiteDocument(suite, machine, 8);
    ASSERT_GT(delta().store, 0);

    // Warm process, same directory: byte-identical at any job count,
    // with real disk traffic behind it.
    compileCacheClear();
    std::string warm = runSuiteDocument(suite, machine, 8);
    EXPECT_GT(delta().hit, 0);
    EXPECT_EQ(cold, warm);

    compileCacheClear();
    std::string serial = runSuiteDocument(suite, machine, 1);
    EXPECT_EQ(cold, serial);
}

// ---------------------------------------------------------------------
// Failure containment.

TEST_F(CacheDiskTest, CorruptEntryIsQuarantinedAndRecompiled)
{
    Module m = parseLirOrDie(kDiskSaxpy);
    Machine machine = paperMachine();
    ArrayTable arrays = m.arrays;
    ASSERT_TRUE(tryCompileLoop(m.loops[0], arrays, machine,
                               Technique::Selective)
                    .ok());
    std::string key = compileCacheKey(
        m.loops[0], m.arrays, machine, Technique::Selective, {});
    std::string path = diskCacheEntryPath(key);
    ASSERT_TRUE(fs::exists(path));

    // Garble the entry in place (bit rot, a truncated write from a
    // crashed foreign process, an editor accident).
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"schema\": \"selvec-cache-v1\", \"key\": tr";
    }
    compileCacheClear();
    ArrayTable again = m.arrays;
    Expected<CompiledProgram> warm = tryCompileLoop(
        m.loops[0], again, machine, Technique::Selective);
    // Corruption costs a recompile, never a failure.
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(lastCompileSource(), CompileSource::Compiled);
    EXPECT_GT(delta().corrupt, 0);
    // The bad bytes are preserved for post-mortem and the slot is
    // republished with a good entry.
    EXPECT_TRUE(fs::exists(path + ".quarantine"));
    EXPECT_TRUE(fs::exists(path));
    std::optional<CompileCacheValue> reloaded =
        diskCacheLoadCompile(key);
    ASSERT_TRUE(reloaded.has_value());
    EXPECT_TRUE(reloaded->ok);
}

TEST_F(CacheDiskTest, ChecksumMismatchIsCorruption)
{
    CompileCacheValue value;
    value.ok = false;
    value.status = Status::error(ErrorCode::Internal, "t", "negative");
    diskCacheStoreCompile("checksum-key", value);
    std::string path = diskCacheEntryPath("checksum-key");
    ASSERT_TRUE(fs::exists(path));

    // Flip the payload under an intact wrapper: only the checksum
    // can catch this.
    std::ifstream in(path);
    std::stringstream text;
    text << in.rdbuf();
    in.close();
    std::string body = text.str();
    size_t at = body.find("negative");
    ASSERT_NE(at, std::string::npos);
    body.replace(at, 8, "POSITIVE");
    {
        std::ofstream out(path, std::ios::trunc);
        out << body;
    }
    int64_t corrupt0 = delta().corrupt;
    EXPECT_FALSE(diskCacheLoadCompile("checksum-key").has_value());
    EXPECT_GT(delta().corrupt, corrupt0);
    EXPECT_TRUE(fs::exists(path + ".quarantine"));
}

TEST_F(CacheDiskTest, KeyMismatchIsAMissNotCorruption)
{
    // A 64-bit hash collision aliases two keys to one entry path.
    // The entry stores its key verbatim, so the foreign reader gets
    // a plain miss — never an aliased program, and no quarantine
    // (the entry is healthy, it is just somebody else's).
    CompileCacheValue value;
    value.ok = false;
    value.status = Status::error(ErrorCode::Internal, "t", "mine");
    diskCacheStoreCompile("the-real-key", value);

    std::string alias = diskCacheEntryPath("a-colliding-key");
    fs::create_directories(fs::path(alias).parent_path());
    fs::copy_file(diskCacheEntryPath("the-real-key"), alias,
                  fs::copy_options::overwrite_existing);

    int64_t miss0 = delta().miss;
    int64_t corrupt0 = delta().corrupt;
    EXPECT_FALSE(diskCacheLoadCompile("a-colliding-key").has_value());
    EXPECT_GT(delta().miss, miss0);
    EXPECT_EQ(delta().corrupt, corrupt0);
    EXPECT_TRUE(fs::exists(alias));    // not quarantined
}

TEST_F(CacheDiskTest, LevelConfusionIsAMiss)
{
    // A compile-level key must not deserialize a schedule-level
    // payload (or vice versa) even if the key matches.
    CompileCacheValue value;
    value.ok = false;
    value.status = Status::error(ErrorCode::Internal, "t", "x");
    diskCacheStoreCompile("level-key", value);
    EXPECT_FALSE(diskCacheLoadSchedule("level-key").has_value());
}

// ---------------------------------------------------------------------
// Eviction.

/** A negative entry padded to roughly `kb` kilobytes on disk. */
CompileCacheValue
paddedValue(size_t kb)
{
    CompileCacheValue value;
    value.ok = false;
    value.status = Status::error(ErrorCode::Internal, "pad",
                                 std::string(kb * 1024, 'x'));
    return value;
}

TEST_F(CacheDiskTest, EvictionIsLruWithDeterministicTiebreak)
{
    // Six ~200KB entries against a 1MB cap: the sweep must drop the
    // oldest-mtime entries first, in path order among equals, until
    // the total is back under the cap.
    std::vector<std::string> keys;
    for (int i = 0; i < 6; ++i)
        keys.push_back("evict-key-" + std::to_string(i));
    for (const std::string &key : keys)
        diskCacheStoreCompile(key, paddedValue(200));
    ASSERT_EQ(delta().store, 6);
    ASSERT_GT(diskCacheTotalBytes(), int64_t{1} << 20);

    // Age the entries explicitly: key i is (6-i) minutes old, so the
    // LRU order is exactly keys[0], keys[1], ...
    fs::file_time_type now = fs::file_time_type::clock::now();
    for (size_t i = 0; i < keys.size(); ++i)
        fs::last_write_time(diskCacheEntryPath(keys[i]),
                            now - std::chrono::minutes(6 - i));

    // A load refreshes its entry's recency: keys[0] — the oldest —
    // becomes the newest and must survive the sweep. (Negative
    // entries load as values with ok=false; they are real entries.)
    std::optional<CompileCacheValue> touched =
        diskCacheLoadCompile(keys[0]);
    ASSERT_TRUE(touched.has_value());
    EXPECT_FALSE(touched->ok);

    diskCacheConfigure(dir, 1);    // 1MB cap
    size_t evicted = diskCacheSweep();
    EXPECT_GT(evicted, 0u);
    EXPECT_EQ(delta().evict, static_cast<int64_t>(evicted));
    EXPECT_LE(diskCacheTotalBytes(), int64_t{1} << 20);

    // keys[1] and keys[2] were the least recent; the refreshed
    // keys[0] and the newest entries survive.
    EXPECT_TRUE(fs::exists(diskCacheEntryPath(keys[0])));
    EXPECT_FALSE(fs::exists(diskCacheEntryPath(keys[1])));
    EXPECT_TRUE(fs::exists(diskCacheEntryPath(keys[5])));

    // Determinism: the surviving set is a pure function of the
    // (mtime, path) order, so a replayed sweep evicts nothing more.
    EXPECT_EQ(diskCacheSweep(), 0u);
}

TEST_F(CacheDiskTest, StoresSweepAutomaticallyUnderACap)
{
    diskCacheConfigure(dir, 1);    // 1MB cap from the start
    for (int i = 0; i < 8; ++i)
        diskCacheStoreCompile("auto-" + std::to_string(i),
                              paddedValue(200));
    // Every store kept the directory under its cap.
    EXPECT_LE(diskCacheTotalBytes(), int64_t{1} << 20);
    EXPECT_GT(delta().evict, 0);
}

// ---------------------------------------------------------------------
// Concurrency: one directory, many writers.

TEST_F(CacheDiskTest, ConcurrentSuiteRunsShareTheDirectory)
{
    Suite suite = quickSuite();
    Machine machine = paperMachine();
    std::string reference = runSuiteDocument(suite, machine, 1);

    // Two cold evaluateSuite runs race to publish every entry while
    // reading each other's finished files. Single-writer publication
    // (temp + rename) means readers only ever see complete entries,
    // and both documents come out byte-identical to the serial
    // reference.
    compileCacheClear();
    std::string docA, docB;
    std::thread a([&] { docA = runSuiteDocument(suite, machine, 8); });
    std::thread b([&] { docB = runSuiteDocument(suite, machine, 8); });
    a.join();
    b.join();
    EXPECT_EQ(docA, reference);
    EXPECT_EQ(docB, reference);

    // And a warm third run still loads cleanly from what they wrote.
    compileCacheClear();
    int64_t hit0 = delta().hit;
    EXPECT_EQ(runSuiteDocument(suite, machine, 8), reference);
    EXPECT_GT(delta().hit, hit0);
}

/** A serve request line for one workload loop of `suite`. */
std::string
requestLineOf(const Suite &suite, const WorkloadLoop &wl,
              Technique technique)
{
    ReproBundle bundle;
    bundle.name = suite.loopOf(wl).name;
    bundle.module.arrays = suite.module.arrays;
    bundle.module.loops.push_back(suite.loopOf(wl));
    bundle.liveIns = wl.liveIns;
    bundle.machine = paperMachine();
    bundle.technique = technique;
    bundle.tripCount = wl.tripCount;
    bundle.invocations = wl.invocations;
    bundle.memPattern = 1;
    return jsonOfReproBundle(bundle).dump(0);
}

TEST_F(CacheDiskTest, ServeBatchRespondsInInputOrder)
{
    Suite suite = quickSuite();
    const WorkloadLoop &wl = suite.loops.front();
    std::string line = requestLineOf(suite, wl, Technique::Selective);

    std::stringstream in;
    in << line << "\n";
    in << line << "\n";          // dedup follower
    in << "this is not json\n";  // malformed, still answered in place
    in << line << "\n";          // another follower

    std::stringstream out;
    ServeOptions options;
    options.jobs = 8;
    ServeSummary summary = serveBatch(in, out, options);
    EXPECT_EQ(summary.requests, 4);
    EXPECT_EQ(summary.ok, 3);
    EXPECT_EQ(summary.malformed, 1);
    EXPECT_EQ(summary.deduped, 2);
    EXPECT_GT(delta().store, 0);

    std::vector<std::string> lines;
    std::string response;
    while (std::getline(out, response))
        lines.push_back(response);
    ASSERT_EQ(lines.size(), 4u);
    for (size_t i = 0; i < lines.size(); ++i) {
        Expected<JsonValue> doc = parseJson(lines[i]);
        ASSERT_TRUE(doc.ok()) << lines[i];
        EXPECT_EQ(doc.value().find("schema")->stringValue(),
                  kServeSchema);
        EXPECT_EQ(doc.value().find("index")->intValue(),
                  static_cast<int64_t>(i));
        EXPECT_EQ(doc.value().find("ok")->boolValue(), i != 2);
    }
    // The dedup followers share the leader's compile and provenance.
    Expected<JsonValue> first = parseJson(lines[0]);
    Expected<JsonValue> last = parseJson(lines[3]);
    EXPECT_EQ(first.value().find("cycles")->intValue(),
              last.value().find("cycles")->intValue());
    EXPECT_EQ(first.value().find("source")->stringValue(),
              last.value().find("source")->stringValue());

    // A warm batch in a "new process" answers from disk with the
    // same response bytes apart from provenance.
    compileCacheClear();
    std::stringstream in2, out2;
    in2 << line << "\n";
    serveBatch(in2, out2, options);
    Expected<JsonValue> warm = parseJson(out2.str());
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm.value().find("source")->stringValue(), "disk");
    EXPECT_EQ(warm.value().find("cycles")->intValue(),
              first.value().find("cycles")->intValue());
}

TEST_F(CacheDiskTest, ServeBatchOutputIsJobCountInvariant)
{
    Suite suite = quickSuite();
    std::string batch;
    for (const WorkloadLoop &wl : suite.loops) {
        batch += requestLineOf(suite, wl, Technique::Selective) + "\n";
        batch += requestLineOf(suite, wl, Technique::ModuloOnly) + "\n";
    }

    // Fully cold both times — the `source` provenance field honestly
    // reports cache state, so byte-identity is only promised for
    // equal starting states.
    compileCacheClear();
    fs::remove_all(dir);
    std::stringstream in1(batch), out1;
    ServeOptions serial;
    serial.jobs = 1;
    serveBatch(in1, out1, serial);

    compileCacheClear();
    fs::remove_all(dir);
    std::stringstream in8(batch), out8;
    ServeOptions parallel;
    parallel.jobs = 8;
    serveBatch(in8, out8, parallel);

    EXPECT_EQ(out1.str(), out8.str());
}

TEST_F(CacheDiskTest, ConcurrentServeBatchesShareTheDirectory)
{
    Suite suite = quickSuite();
    std::string batch;
    for (const WorkloadLoop &wl : suite.loops)
        batch += requestLineOf(suite, wl, Technique::Selective) + "\n";

    std::string outA, outB;
    std::thread a([&] {
        std::stringstream in(batch), out;
        ServeOptions options;
        options.jobs = 8;
        serveBatch(in, out, options);
        outA = out.str();
    });
    std::thread b([&] {
        std::stringstream in(batch), out;
        ServeOptions options;
        options.jobs = 8;
        serveBatch(in, out, options);
        outB = out.str();
    });
    a.join();
    b.join();
    // The two batches race for the in-memory cache, so which one
    // reports "memory" vs "compiled" provenance is timing-dependent;
    // everything else — results, cycles, order — must agree.
    auto stripSource = [](std::string text) {
        static const std::regex re("\"source\": \"[a-z]+\"");
        return std::regex_replace(text, re, "\"source\": \"*\"");
    };
    EXPECT_EQ(stripSource(outA), stripSource(outB));

    // Both batches' entries landed intact: a cold in-memory run
    // serves everything from disk.
    compileCacheClear();
    int64_t hit0 = delta().hit;
    std::stringstream in(batch), out;
    ServeOptions options;
    options.jobs = 8;
    ServeSummary summary = serveBatch(in, out, options);
    EXPECT_EQ(summary.failed, 0);
    EXPECT_GT(delta().hit, hit0);
}

// --------------------------------------------------- serve CLI parsing

TEST(ServeCliParse, AcceptsBothFlagSpellings)
{
    Expected<ServeCliConfig> cfg = parseServeArgs(
        {"in.jsonl", "--jobs", "4", "--cache-dir=/tmp/c",
         "--cache-max-mb", "64", "--output=out.jsonl"});
    ASSERT_TRUE(cfg.ok()) << cfg.status().str();
    EXPECT_EQ(cfg.value().inputPath, "in.jsonl");
    EXPECT_EQ(cfg.value().outputPath, "out.jsonl");
    EXPECT_EQ(cfg.value().jobs, 4);
    EXPECT_EQ(cfg.value().cacheDir, "/tmp/c");
    EXPECT_EQ(cfg.value().cacheMaxMb, 64);
    EXPECT_FALSE(cfg.value().noCache);
    EXPECT_TRUE(cfg.value().diskCacheWanted());
}

TEST(ServeCliParse, RejectsBadNumericValues)
{
    // Each of these std::atoi silently parsed as 0 before — a batch
    // that "worked" with the wrong parallelism or an uncapped cache.
    for (const char *bad : {"abc", "-1", "3x", "", " 4", "4.5"}) {
        Expected<ServeCliConfig> cfg =
            parseServeArgs({"--jobs", bad});
        EXPECT_FALSE(cfg.ok()) << "accepted --jobs " << bad;
        if (!cfg.ok()) {
            EXPECT_EQ(cfg.status().code(), ErrorCode::InvalidInput);
        }
        cfg = parseServeArgs({std::string("--cache-max-mb=") + bad});
        EXPECT_FALSE(cfg.ok()) << "accepted --cache-max-mb=" << bad;
    }
    // A bare trailing value flag is a missing value, not jobs=0.
    EXPECT_FALSE(parseServeArgs({"--jobs"}).ok());
    EXPECT_FALSE(parseServeArgs({"--cache-max-mb"}).ok());
}

TEST(ServeCliParse, RejectsUnknownFlagsAndExtraPositionals)
{
    EXPECT_FALSE(parseServeArgs({"--frobnicate"}).ok());
    EXPECT_FALSE(parseServeArgs({"a.jsonl", "b.jsonl"}).ok());
}

TEST(ServeCliParse, NoCacheWinsRegardlessOfFlagOrder)
{
    // --no-cache before --cache-dir.
    Expected<ServeCliConfig> first = parseServeArgs(
        {"--no-cache", "--cache-dir", "/tmp/c"});
    ASSERT_TRUE(first.ok());
    EXPECT_TRUE(first.value().noCache);
    EXPECT_FALSE(first.value().diskCacheWanted());

    // --no-cache after --cache-dir: same outcome — a disabled cache
    // must never configure (or write) the disk layer.
    Expected<ServeCliConfig> last = parseServeArgs(
        {"--cache-dir", "/tmp/c", "--no-cache"});
    ASSERT_TRUE(last.ok());
    EXPECT_TRUE(last.value().noCache);
    EXPECT_FALSE(last.value().diskCacheWanted());

    Expected<ServeCliConfig> plain =
        parseServeArgs({"--cache-dir", "/tmp/c"});
    ASSERT_TRUE(plain.ok());
    EXPECT_TRUE(plain.value().diskCacheWanted());
}

TEST_F(CacheDiskTest, NoCacheBatchNeverTouchesTheDiskLayer)
{
    // The end-to-end shape of the precedence bug: with --no-cache the
    // batch must compile from scratch (provenance "compiled") and
    // leave the disk directory untouched, even though a cache dir was
    // on the command line. parseServeArgs models the CLI; a
    // diskCacheWanted()==false config means diskCacheConfigure is
    // never called — so undo the fixture's configure first, exactly
    // the state selvec_serve leaves behind.
    Expected<ServeCliConfig> cfg =
        parseServeArgs({"--cache-dir", dir, "--no-cache"});
    ASSERT_TRUE(cfg.ok());
    ASSERT_FALSE(cfg.value().diskCacheWanted());

    diskCacheConfigure("");
    compileCacheSetEnabled(!cfg.value().noCache);

    Suite suite = quickSuite();
    std::string line = requestLineOf(suite, suite.loops.front(),
                                     Technique::Selective);
    std::stringstream in(line + "\n"), out;
    ServeSummary summary = serveBatch(in, out, ServeOptions{});

    EXPECT_EQ(summary.requests, 1);
    EXPECT_EQ(summary.failed, 0);
    Expected<JsonValue> doc = parseJson(out.str());
    ASSERT_TRUE(doc.ok()) << out.str();
    EXPECT_EQ(doc.value().find("source")->stringValue(), "compiled");
    DiskCacheCounters moved = delta();
    EXPECT_EQ(moved.store, 0);
    EXPECT_EQ(moved.hit, 0);
    EXPECT_TRUE(!fs::exists(dir) || fs::is_empty(dir))
        << "a disabled cache wrote to the disk layer";
}

} // anonymous namespace
} // namespace selvec
