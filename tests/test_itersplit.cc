/**
 * @file
 * Tests for the iteration-partitioned vectorization extension (paper
 * section 6: larger scheduling windows, whole iterations assigned to
 * resources, no communication).
 */

#include <gtest/gtest.h>

#include "analysis/depgraph.hh"
#include "core/itersplit.hh"
#include "driver/driver.hh"
#include "lir/lir.hh"
#include "machine/machine.hh"

namespace selvec
{
namespace
{

const char *kSaxpy = R"(
array X f64 600
array Y f64 600
loop saxpy {
    livein a f64
    body {
        x = load X[i]
        y = load Y[i]
        ax = fmul a x
        s = fadd ax y
        store Y[i] = s
    }
}
)";

struct Ctx
{
    Module module;
    Machine machine;
    VectAnalysis va;

    explicit Ctx(const char *text, Machine m = alignedMachine())
        : machine(std::move(m))
    {
        ParseResult pr = parseLir(text);
        EXPECT_TRUE(pr.ok) << pr.error;
        module = std::move(pr.module);
        DepGraph graph(module.arrays, module.loops[0], machine);
        va = analyzeVectorizable(module.loops[0], graph, machine);
    }

    static Machine
    alignedMachine()
    {
        Machine m = paperMachine();
        m.alignment = AlignPolicy::AssumeAligned;
        return m;
    }

    const Loop &loop() const { return module.loops.front(); }
};

TEST(IterSplit, BuildsWithoutAnyCommunication)
{
    Ctx c(kSaxpy);
    IterSplitResult r =
        iterationSplit(c.loop(), c.module.arrays, c.va, c.machine, 3);
    ASSERT_TRUE(r.ok) << r.reason;
    EXPECT_EQ(r.loop.coverage, 3);
    for (const Operation &op : r.loop.ops) {
        EXPECT_NE(op.opcode, Opcode::XferStoreS);
        EXPECT_NE(op.opcode, Opcode::XferStoreV);
        EXPECT_NE(op.opcode, Opcode::MovSV);
        EXPECT_NE(op.opcode, Opcode::VPack);
    }
    // One vector instance + one scalar replica of each op.
    EXPECT_EQ(r.loop.numOps(), 2 * c.loop().numOps());
    // Vector refs advance by the unroll factor.
    EXPECT_EQ(r.loop.ops[0].ref.scale, 3);
}

TEST(IterSplit, Equivalence)
{
    Ctx c(kSaxpy);
    IterSplitResult r =
        iterationSplit(c.loop(), c.module.arrays, c.va, c.machine, 3);
    ASSERT_TRUE(r.ok) << r.reason;

    LiveEnv env;
    env["a"] = RtVal::scalarF(1.25);
    MemoryImage ref(c.module.arrays), got(c.module.arrays);
    ref.fillPattern(51);
    got.fillPattern(51);
    executeLoop(c.module.arrays, c.loop(), c.machine, ref, env, 60);
    executeLoop(c.module.arrays, r.loop, c.machine, got, env, 20);
    EXPECT_EQ(got.diff(ref), "");
}

TEST(IterSplit, RefusesMisalignedPolicy)
{
    Ctx c(kSaxpy, paperMachine());
    IterSplitResult r =
        iterationSplit(c.loop(), c.module.arrays, c.va, c.machine, 3);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("unaligned"), std::string::npos);
}

TEST(IterSplit, RefusesCarriedState)
{
    Ctx c(R"(
array X f64 600
loop t {
    livein s0 f64
    carried s f64 init s0 update s1
    body {
        x = load X[i]
        s1 = fadd s x
    }
    liveout s1
}
)");
    IterSplitResult r =
        iterationSplit(c.loop(), c.module.arrays, c.va, c.machine, 3);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("carried"), std::string::npos);
}

TEST(IterSplit, RefusesNonVectorizableOps)
{
    Ctx c(R"(
array X f64 2048
array Y f64 600
loop t {
    body {
        x = load X[3i]
        y = fneg x
        store Y[i] = y
    }
}
)");
    IterSplitResult r =
        iterationSplit(c.loop(), c.module.arrays, c.va, c.machine, 3);
    EXPECT_FALSE(r.ok);
}

TEST(IterSplit, DriverTechniqueWithCleanup)
{
    Module m = parseLirOrDie(kSaxpy);
    Machine machine = Ctx::alignedMachine();
    ArrayTable arrays = m.arrays;
    CompiledProgram p = compileLoop(m.loops[0], arrays, machine,
                                    Technique::IterationSplit);
    ASSERT_EQ(p.loops.size(), 1u);
    EXPECT_EQ(p.loops[0].coverage, 3);

    LiveEnv env;
    env["a"] = RtVal::scalarF(-0.5);
    // Trip counts exercising the cleanup remainders 0, 1 and 2.
    for (int64_t n : {0, 1, 2, 3, 20, 31, 32, 33}) {
        MemoryImage mem(arrays), ref(arrays);
        mem.fillPattern(53);
        ref.fillPattern(53);
        runCompiled(p, arrays, machine, mem, env, n);
        runReference(m.loops[0], arrays, machine, ref, env, n);
        EXPECT_EQ(mem.diff(ref), "") << "n=" << n;
    }
}

TEST(IterSplit, DriverFallsBackWhenInapplicable)
{
    Module m = parseLirOrDie(kSaxpy);
    Machine machine = paperMachine();   // misaligned: refused
    ArrayTable arrays = m.arrays;
    CompiledProgram p = compileLoop(m.loops[0], arrays, machine,
                                    Technique::IterationSplit);
    EXPECT_EQ(p.loops[0].coverage, machine.vectorLength);

    LiveEnv env;
    env["a"] = RtVal::scalarF(2.0);
    MemoryImage mem(arrays), ref(arrays);
    mem.fillPattern(54);
    ref.fillPattern(54);
    runCompiled(p, arrays, machine, mem, env, 33);
    runReference(m.loops[0], arrays, machine, ref, env, 33);
    EXPECT_EQ(mem.diff(ref), "");
}

TEST(IterSplit, WiderUnrollFactors)
{
    Ctx c(kSaxpy);
    for (int unroll : {3, 4, 5, 6}) {
        IterSplitResult r = iterationSplit(
            c.loop(), c.module.arrays, c.va, c.machine, unroll);
        ASSERT_TRUE(r.ok) << unroll << ": " << r.reason;
        EXPECT_EQ(r.loop.coverage, unroll);

        LiveEnv env;
        env["a"] = RtVal::scalarF(0.75);
        MemoryImage ref(c.module.arrays), got(c.module.arrays);
        ref.fillPattern(55);
        got.fillPattern(55);
        executeLoop(c.module.arrays, c.loop(), c.machine, ref, env,
                    60);
        executeLoop(c.module.arrays, r.loop, c.machine, got, env,
                    60 / unroll, 0);
        // Compare only the fully covered prefix: run the remainder
        // sequentially from the right base.
        executeLoop(c.module.arrays, c.loop(), c.machine, got, env,
                    60 % unroll, (60 / unroll) * unroll);
        EXPECT_EQ(got.diff(ref), "");
    }
}

TEST(IterSplit, LiveOutsKeepNames)
{
    Ctx c(R"(
array X f64 600
loop t {
    body {
        x = load X[i]
        y = fneg x
        store X[i] = y
    }
    liveout y
}
)");
    IterSplitResult r =
        iterationSplit(c.loop(), c.module.arrays, c.va, c.machine, 3);
    ASSERT_TRUE(r.ok) << r.reason;
    ASSERT_EQ(r.loop.liveOuts.size(), 1u);
    EXPECT_EQ(r.loop.valueInfo(r.loop.liveOuts[0]).name, "y");
}

} // anonymous namespace
} // namespace selvec
