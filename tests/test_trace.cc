/**
 * @file
 * Unit tests for the observability layer: the JSON document model,
 * scoped-span tracing (nesting, aggregation, disabled-mode zero side
 * effects) and the compile-stats registry (kinds, snapshot, JSON
 * round-trip of the stat tree).
 */

#include <gtest/gtest.h>

#include <limits>

#include "support/json.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace selvec
{
namespace
{

// ---------------------------------------------------------------------
// JSON document model.

TEST(Json, ScalarDump)
{
    EXPECT_EQ(JsonValue().dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(false).dump(), "false");
    EXPECT_EQ(JsonValue(int64_t{42}).dump(), "42");
    EXPECT_EQ(JsonValue(-7).dump(), "-7");
    EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
    EXPECT_EQ(JsonValue(1.5).dump(), "1.5");
    // Integral doubles within the exactly-representable range emit
    // as integer tokens (the value is exact either way; the integer
    // form is canonical and survives int/double round-trips).
    EXPECT_EQ(JsonValue(2.0).dump(), "2");
    EXPECT_EQ(JsonValue(-3.0).dump(), "-3");
    // Beyond 2^53 an integral double is not exact; it keeps the
    // fractional marker so a reader cannot mistake it for an exact
    // integer.
    EXPECT_NE(JsonValue(1e300).dump().find('e'), std::string::npos);
}

TEST(Json, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\n\t"), "\"a\\\"b\\\\c\\n\\t\"");
    EXPECT_EQ(jsonEscape(std::string("\x01", 1)), "\"\\u0001\"");
}

TEST(Json, ObjectsPreserveInsertionOrder)
{
    JsonValue obj = JsonValue::object();
    obj.set("zebra", 1);
    obj.set("alpha", 2);
    obj.set("zebra", 3);    // overwrite keeps position
    EXPECT_EQ(obj.dump(), "{\"zebra\": 3, \"alpha\": 2}");
    ASSERT_NE(obj.find("alpha"), nullptr);
    EXPECT_EQ(obj.find("alpha")->intValue(), 2);
    EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, FindPathWalksNestedObjects)
{
    JsonValue inner = JsonValue::object();
    inner.set("attempts", int64_t{9});
    JsonValue outer = JsonValue::object();
    outer.set("modsched", std::move(inner));
    JsonValue doc = JsonValue::object();
    doc.set("stats", std::move(outer));

    const JsonValue *leaf = doc.findPath("stats.modsched.attempts");
    ASSERT_NE(leaf, nullptr);
    EXPECT_EQ(leaf->intValue(), 9);
    EXPECT_EQ(doc.findPath("stats.nothere.attempts"), nullptr);
}

TEST(Json, ParseRoundTrip)
{
    const char *text = R"({"a": [1, 2.5, true, null, "s\u00e9"],
                           "b": {"c": -3}})";
    Expected<JsonValue> doc = parseJson(text);
    ASSERT_TRUE(doc.ok()) << doc.status().str();
    const JsonValue &v = doc.value();
    ASSERT_TRUE(v.isObject());
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->size(), 5u);
    EXPECT_EQ(a->items()[0].intValue(), 1);
    EXPECT_DOUBLE_EQ(a->items()[1].numberValue(), 2.5);
    EXPECT_TRUE(a->items()[2].boolValue());
    EXPECT_TRUE(a->items()[3].isNull());
    EXPECT_EQ(a->items()[4].stringValue(), "s\xc3\xa9");
    EXPECT_EQ(v.findPath("b.c")->intValue(), -3);

    // dump -> parse -> dump is a fixed point (both indentations).
    Expected<JsonValue> again = parseJson(v.dump());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value(), v);
    Expected<JsonValue> pretty = parseJson(v.dump(2));
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(pretty.value(), v);
}

TEST(Json, ParseRejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\x\"",
          "{\"a\" 1}", "[01]", "nul", "{\"a\":1,}"}) {
        Expected<JsonValue> doc = parseJson(bad);
        EXPECT_FALSE(doc.ok()) << "accepted: " << bad;
        if (!doc.ok()) {
            EXPECT_EQ(doc.status().code(), ErrorCode::InvalidInput);
        }
    }
}

TEST(Json, DoublesRoundTripExactly)
{
    for (double d : {0.1, 1.0 / 3.0, 1e-300, 123456.789012345}) {
        Expected<JsonValue> back = parseJson(JsonValue(d).dump());
        ASSERT_TRUE(back.ok());
        EXPECT_DOUBLE_EQ(back.value().numberValue(), d);
    }
}

TEST(Json, IntegersAbove2To53RoundTripExactly)
{
    // Cycle totals overflow double precision on long sweeps; int64
    // values must survive dump -> parse untruncated well above 2^53.
    for (int64_t v : {int64_t{1} << 53, (int64_t{1} << 53) + 1,
                      int64_t{9007199254740993},
                      int64_t{9223372036854775807},
                      int64_t{-9223372036854775807} - 1}) {
        Expected<JsonValue> back = parseJson(JsonValue(v).dump());
        ASSERT_TRUE(back.ok()) << v;
        EXPECT_TRUE(back.value().isInt()) << v;
        EXPECT_EQ(back.value().intValue(), v);
    }
}

TEST(Json, IntDoubleEqualityIsExact)
{
    // 2^53 + 1 is not representable as a double; the nearest double
    // (2^53) must not compare equal to it.
    EXPECT_EQ(JsonValue(int64_t{1} << 53),
              JsonValue(9007199254740992.0));
    EXPECT_NE(JsonValue((int64_t{1} << 53) + 1),
              JsonValue(9007199254740992.0));
    EXPECT_EQ(JsonValue(int64_t{3}), JsonValue(3.0));
    EXPECT_NE(JsonValue(int64_t{3}), JsonValue(3.5));
}

TEST(Json, ParseRejectsIntegerOverflow)
{
    for (const char *bad :
         {"9223372036854775808", "-9223372036854775809",
          "99999999999999999999"}) {
        Expected<JsonValue> doc = parseJson(bad);
        EXPECT_FALSE(doc.ok()) << "accepted: " << bad;
    }
}

TEST(Json, NonFiniteDoublesAreRejectedAtWriteTime)
{
    double inf = std::numeric_limits<double>::infinity();
    double nan = std::numeric_limits<double>::quiet_NaN();

    JsonValue doc = JsonValue::object();
    doc.set("fine", 1.5);
    EXPECT_TRUE(doc.checkWritable().ok());

    JsonValue arr = JsonValue::array();
    arr.append(0.0);
    arr.append(inf);
    doc.set("broken", std::move(arr));
    Status st = doc.checkWritable();
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::InvalidInput);
    // The status names the offending path.
    EXPECT_NE(st.str().find("broken[1]"), std::string::npos)
        << st.str();

    Expected<std::string> text = doc.dumpChecked();
    EXPECT_FALSE(text.ok());

    EXPECT_FALSE(JsonValue(nan).checkWritable().ok());
    Status write = writeJsonFileChecked("/nonexistent-dir/x.json",
                                        JsonValue(nan));
    EXPECT_FALSE(write.ok());
}

// ---------------------------------------------------------------------
// Scoped-span tracing.

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasEnabled = traceEnabled();
        traceSetEnabled(true);
        traceReset();
    }

    void
    TearDown() override
    {
        traceReset();
        traceSetEnabled(wasEnabled);
    }

    bool wasEnabled = false;
};

const TraceNode *
findChild(const std::vector<TraceNode> &nodes, const std::string &name)
{
    for (const TraceNode &n : nodes) {
        if (n.name == name)
            return &n;
    }
    return nullptr;
}

TEST_F(TraceTest, SpansNestAndAggregate)
{
    for (int i = 0; i < 3; ++i) {
        TraceSpan outer("compile");
        {
            TraceSpan inner("modsched");
        }
        {
            TraceSpan inner("modsched");
        }
        TraceSpan other("checker");
    }

    std::vector<TraceNode> forest = traceSnapshot();
    ASSERT_EQ(forest.size(), 1u);   // one root name
    const TraceNode &compile = forest[0];
    EXPECT_EQ(compile.name, "compile");
    EXPECT_EQ(compile.count, 3);
    EXPECT_GE(compile.wallNs, 0);

    const TraceNode *modsched = findChild(compile.children, "modsched");
    ASSERT_NE(modsched, nullptr);
    EXPECT_EQ(modsched->count, 6);    // 2 spans x 3 iterations folded
    // `other` was constructed while `outer` was open, so it nests.
    const TraceNode *checker = findChild(compile.children, "checker");
    ASSERT_NE(checker, nullptr);
    EXPECT_EQ(checker->count, 3);
    // A child's wall time is bounded by its parent's.
    EXPECT_LE(modsched->wallNs + checker->wallNs, compile.wallNs);
}

TEST_F(TraceTest, SnapshotSortsSiblingsByName)
{
    // First-seen order depends on which thread reaches the forest
    // first; the snapshot sorts siblings by name so reported trees
    // are deterministic under parallel evaluation.
    {
        TraceSpan a("parse");
    }
    {
        TraceSpan b("evaluate");
    }
    {
        TraceSpan a2("parse");
    }
    std::vector<TraceNode> forest = traceSnapshot();
    ASSERT_EQ(forest.size(), 2u);
    EXPECT_EQ(forest[0].name, "evaluate");
    EXPECT_EQ(forest[0].count, 1);
    EXPECT_EQ(forest[1].name, "parse");
    EXPECT_EQ(forest[1].count, 2);
}

TEST_F(TraceTest, DisabledModeHasZeroSideEffects)
{
    traceSetEnabled(false);
    {
        TraceSpan span("never.recorded");
        TraceSpan nested("also.never");
    }
    EXPECT_TRUE(traceSnapshot().empty());
    EXPECT_EQ(traceToJson().size(), 0u);

    // Re-enabling afterwards starts from a clean tree.
    traceSetEnabled(true);
    {
        TraceSpan span("fresh");
    }
    std::vector<TraceNode> forest = traceSnapshot();
    ASSERT_EQ(forest.size(), 1u);
    EXPECT_EQ(forest[0].name, "fresh");
    EXPECT_EQ(findChild(forest, "never.recorded"), nullptr);
}

TEST_F(TraceTest, JsonShapeMatchesForest)
{
    {
        TraceSpan outer("driver.compile");
        TraceSpan inner("modsched");
    }
    JsonValue json = traceToJson();
    ASSERT_TRUE(json.isArray());
    ASSERT_EQ(json.size(), 1u);
    const JsonValue &root = json.items()[0];
    EXPECT_EQ(root.find("name")->stringValue(), "driver.compile");
    EXPECT_EQ(root.find("count")->intValue(), 1);
    EXPECT_GE(root.find("wall_ns")->intValue(), 0);
    const JsonValue *children = root.find("children");
    ASSERT_NE(children, nullptr);
    ASSERT_EQ(children->size(), 1u);
    EXPECT_EQ(children->items()[0].find("name")->stringValue(),
              "modsched");

    // The trace tree is valid JSON text, round-trippable.
    Expected<JsonValue> back = parseJson(json.dump(2));
    ASSERT_TRUE(back.ok()) << back.status().str();
    EXPECT_EQ(back.value(), json);
}

// ---------------------------------------------------------------------
// Compile-stats registry.

TEST(Stats, KindsBehave)
{
    StatsRegistry reg;
    reg.add("modsched.attempts");
    reg.add("modsched.attempts", 4);
    reg.setGauge("modsched.lastIi", 7);
    reg.setGauge("modsched.lastIi", 5);
    reg.maxGauge("modsched.maxIi", 5);
    reg.maxGauge("modsched.maxIi", 9);
    reg.maxGauge("modsched.maxIi", 2);
    reg.addTimerNs("time.compile", 100);
    reg.addTimerNs("time.compile", 250);

    EXPECT_EQ(reg.value("modsched.attempts"), 5);
    EXPECT_EQ(reg.value("modsched.lastIi"), 5);
    EXPECT_EQ(reg.value("modsched.maxIi"), 9);
    EXPECT_EQ(reg.value("time.compile"), 350);
    EXPECT_EQ(reg.value("absent.key"), 0);

    std::vector<StatEntry> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    // Sorted by key.
    EXPECT_EQ(snap[0].key, "modsched.attempts");
    EXPECT_EQ(snap[0].kind, StatKind::Counter);
    EXPECT_EQ(snap[3].key, "time.compile");
    EXPECT_EQ(snap[3].kind, StatKind::Timer);
    EXPECT_EQ(snap[3].samples, 2);

    reg.reset();
    EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Stats, StatTreeRoundTripsThroughJson)
{
    StatsRegistry reg;
    reg.add("partition.runs", 3);
    reg.add("partition.movesCommitted", 17);
    reg.setGauge("partition.lastCost", 420);
    reg.add("modsched.backtracks", 2);
    reg.addTimerNs("time.compile", 1234);

    JsonValue tree = reg.toJson();
    // Dotted keys became nesting.
    EXPECT_EQ(tree.findPath("partition.runs")->intValue(), 3);
    EXPECT_EQ(tree.findPath("partition.lastCost")->intValue(), 420);
    EXPECT_EQ(tree.findPath("modsched.backtracks")->intValue(), 2);
    EXPECT_EQ(tree.findPath("time.compile.total_ns")->intValue(),
              1234);
    EXPECT_EQ(tree.findPath("time.compile.samples")->intValue(), 1);

    // Serialize, reparse, and compare the whole tree.
    Expected<JsonValue> back = parseJson(tree.dump(2));
    ASSERT_TRUE(back.ok()) << back.status().str();
    EXPECT_EQ(back.value(), tree);
}

TEST(Stats, GlobalRegistryIsReachable)
{
    // The pipeline stages report into globalStats(); all this test
    // may assume is that it exists and accumulates.
    int64_t before = globalStats().value("test.trace.probe");
    globalStats().add("test.trace.probe");
    EXPECT_EQ(globalStats().value("test.trace.probe"), before + 1);
}

} // anonymous namespace
} // namespace selvec
