/**
 * @file
 * Unit tests for the affine memory dependence tests.
 */

#include <gtest/gtest.h>

#include "analysis/memdep.hh"

namespace selvec
{
namespace
{

MemAccess
acc(int64_t scale, int64_t offset, int width = 1)
{
    return MemAccess{AffineRef{0, scale, offset}, width};
}

TEST(MemDep, SameElementEveryIteration)
{
    // a[i] vs a[i]: overlap only at distance 0.
    MemDepResult r = testMemDep(acc(1, 0), acc(1, 0));
    EXPECT_FALSE(r.independent);
    EXPECT_FALSE(r.unknown);
    ASSERT_EQ(r.distances.size(), 1u);
    EXPECT_EQ(r.distances[0], 0);
}

TEST(MemDep, ConstantOffsetDistance)
{
    // A = a[i], B = a[i+3]: B at iteration j touches what A touches at
    // iteration j+3, i.e. B leads A: encode d = -3 (B first).
    MemDepResult r = testMemDep(acc(1, 0), acc(1, 3));
    EXPECT_FALSE(r.independent);
    ASSERT_EQ(r.distances.size(), 1u);
    EXPECT_EQ(r.distances[0], -3);

    // Swapped: A = a[i+3], B = a[i]: A first, distance +3.
    MemDepResult s = testMemDep(acc(1, 3), acc(1, 0));
    ASSERT_EQ(s.distances.size(), 1u);
    EXPECT_EQ(s.distances[0], 3);
}

TEST(MemDep, NonUnitStrideMisses)
{
    // a[2i] vs a[2i+1]: even vs odd elements never collide.
    MemDepResult r = testMemDep(acc(2, 0), acc(2, 1));
    EXPECT_TRUE(r.independent);
}

TEST(MemDep, NonUnitStrideHits)
{
    // a[2i] vs a[2i+4]: distance 2.
    MemDepResult r = testMemDep(acc(2, 0), acc(2, 4));
    EXPECT_FALSE(r.independent);
    ASSERT_EQ(r.distances.size(), 1u);
    EXPECT_EQ(r.distances[0], -2);
}

TEST(MemDep, VectorWidthWidensOverlap)
{
    // Vector access of width 2 at a[2i] vs scalar a[2i+1]: lane 1
    // covers the odd elements, same iteration.
    MemDepResult r = testMemDep(acc(2, 0, 2), acc(2, 1));
    EXPECT_FALSE(r.independent);
    ASSERT_EQ(r.distances.size(), 1u);
    EXPECT_EQ(r.distances[0], 0);
}

TEST(MemDep, VectorVsVectorAdjacent)
{
    // w2 access at 2i vs w2 access at 2i+2: consecutive chunks,
    // distance 1, plus lane overlap pattern.
    MemDepResult r = testMemDep(acc(2, 0, 2), acc(2, 2, 2));
    EXPECT_FALSE(r.independent);
    ASSERT_FALSE(r.distances.empty());
    // a[2i..2i+1] vs a[2(j)+2..2(j)+3]: overlap when j = i-1.
    EXPECT_EQ(r.distances[0], -1);
}

TEST(MemDep, LoopInvariantPairAlwaysConflicts)
{
    MemDepResult r = testMemDep(acc(0, 5), acc(0, 5));
    EXPECT_FALSE(r.independent);
    EXPECT_TRUE(r.unknown);
}

TEST(MemDep, LoopInvariantDisjoint)
{
    MemDepResult r = testMemDep(acc(0, 5), acc(0, 9));
    EXPECT_TRUE(r.independent);
}

TEST(MemDep, CoefficientMismatchGcdRefutation)
{
    // a[2i] vs a[2i' + 1] with different coefficient... use 2 and 4:
    // 2i vs 4i+1: parity refutes (gcd 2 does not divide 1).
    MemDepResult r = testMemDep(acc(2, 0), acc(4, 1));
    EXPECT_TRUE(r.independent);
}

TEST(MemDep, CoefficientMismatchConservative)
{
    // i vs 2i: may collide at many iteration pairs - conservative.
    MemDepResult r = testMemDep(acc(1, 0), acc(2, 0));
    EXPECT_FALSE(r.independent);
    EXPECT_TRUE(r.unknown);
}

TEST(MemDep, NegativeScale)
{
    // a[-i + 10] vs a[i]: the conservative path (coefficients differ).
    MemDepResult r = testMemDep(acc(-1, 10), acc(1, 0));
    EXPECT_FALSE(r.independent);
    EXPECT_TRUE(r.unknown);
}

TEST(MemDep, MaxDistanceFilter)
{
    // Distance 100 exceeds the 64 default cap: dropped (reported
    // independent, harmless for scheduling and vectorization).
    MemDepResult r = testMemDep(acc(1, 0), acc(1, 100));
    EXPECT_TRUE(r.independent);

    MemDepResult kept = testMemDep(acc(1, 0), acc(1, 100), 128);
    EXPECT_FALSE(kept.independent);
    ASSERT_EQ(kept.distances.size(), 1u);
    EXPECT_EQ(kept.distances[0], -100);
}

TEST(MemDep, WidthRangeProducesMultipleDistances)
{
    // Width-3 access vs width-3 access one element apart: several
    // iteration distances overlap for stride 1... stride 1 accesses of
    // width 3 at offsets 0 and 1 overlap at distances -3..1 clipped by
    // lane math; just check multiple distances come back sorted.
    MemDepResult r = testMemDep(acc(1, 0, 3), acc(1, 1, 3));
    EXPECT_FALSE(r.independent);
    EXPECT_GT(r.distances.size(), 1u);
    for (size_t i = 1; i < r.distances.size(); ++i)
        EXPECT_LT(r.distances[i - 1], r.distances[i]);
}

} // anonymous namespace
} // namespace selvec
